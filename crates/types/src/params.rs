use std::fmt;

use crate::Error;

/// Which fault model an execution assumes for its up-to-`f` faulty nodes.
///
/// The paper's hybrid model (§I) allows either crash faults (handled by
/// algorithm DAC) or Byzantine faults (handled by DBAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultKind {
    /// No node faults; only the message adversary acts.
    #[default]
    None,
    /// Faulty nodes may stop at any point, possibly mid-broadcast.
    Crash,
    /// Faulty nodes behave arbitrarily, including per-destination
    /// equivocation (undetectable under anonymity, §VI-C).
    Byzantine,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::None => "none",
            FaultKind::Crash => "crash",
            FaultKind::Byzantine => "byzantine",
        };
        f.write_str(s)
    }
}

/// System parameters known to every node: the system size `n`, the fault
/// bound `f`, and the agreement parameter `ε`.
///
/// `Params` also centralizes every threshold and closed-form bound from the
/// paper so that algorithms, adversaries, and experiments all compute them
/// one way:
///
/// | quantity | formula | paper |
/// |----------|---------|-------|
/// | DAC quorum | `⌊n/2⌋ + 1` | Alg. 1 line 12 |
/// | DBAC quorum | `⌊(n+3f)/2⌋ + 1` | Alg. 2 line 8 |
/// | DAC dynaDegree | `⌊n/2⌋` | Thm. 9 |
/// | DBAC dynaDegree | `⌊(n+3f)/2⌋` | Thm. 10 |
/// | DAC resilience | `n ≥ 2f + 1` | §IV |
/// | DBAC resilience | `n ≥ 5f + 1` | §V |
/// | DAC `pend` | `⌈log₂(1/ε)⌉` | Eq. (2) |
/// | DBAC `pend` | `⌈ln ε / ln(1 − 2⁻ⁿ)⌉` | Eq. (6) |
///
/// ```
/// use adn_types::Params;
/// let p = Params::new(11, 2, 1e-3)?;
/// assert_eq!(p.dac_quorum(), 6);
/// assert_eq!(p.dbac_quorum(), 9);
/// assert_eq!(p.dac_pend(), 10); // 2^-10 <= 1e-3
/// assert!(p.dac_resilient() && p.dbac_resilient());
/// # Ok::<(), adn_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    n: usize,
    f: usize,
    eps: f64,
}

impl Params {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParams`] if `n == 0` or `f >= n`.
    /// * [`Error::InvalidEpsilon`] if `eps` is not in `(0, 1]`.
    pub fn new(n: usize, f: usize, eps: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error::InvalidParams {
                reason: "system size n must be at least 1".into(),
            });
        }
        if f >= n {
            return Err(Error::InvalidParams {
                reason: format!("fault bound f = {f} must be smaller than n = {n}"),
            });
        }
        if !(eps.is_finite() && eps > 0.0 && eps <= 1.0) {
            return Err(Error::InvalidEpsilon { got: eps });
        }
        Ok(Params { n, f, eps })
    }

    /// Fault-free parameters (`f = 0`).
    ///
    /// # Errors
    ///
    /// Same constraints as [`Params::new`].
    pub fn fault_free(n: usize, eps: f64) -> Result<Self, Error> {
        Params::new(n, 0, eps)
    }

    /// The system size `n`.
    pub const fn n(self) -> usize {
        self.n
    }

    /// The fault bound `f`.
    pub const fn f(self) -> usize {
        self.f
    }

    /// The agreement parameter `ε`.
    pub const fn eps(self) -> f64 {
        self.eps
    }

    /// Returns a copy with a different `ε`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEpsilon`] if `eps` is not in `(0, 1]`.
    pub fn with_eps(self, eps: f64) -> Result<Self, Error> {
        Params::new(self.n, self.f, eps)
    }

    // --- DAC (crash model) -------------------------------------------------

    /// Number of distinct same-phase values (including the node's own) that
    /// lets DAC advance a phase: `⌊n/2⌋ + 1`.
    pub const fn dac_quorum(self) -> usize {
        self.n / 2 + 1
    }

    /// The dynamic degree `D = ⌊n/2⌋` that, with any finite `T`, is
    /// necessary and sufficient for crash-tolerant approximate consensus.
    pub const fn dac_dyna_degree(self) -> usize {
        self.n / 2
    }

    /// Whether `n ≥ 2f + 1` holds.
    pub const fn dac_resilient(self) -> bool {
        self.n > 2 * self.f
    }

    /// DAC's per-phase convergence rate (Remark 1): exactly `1/2`, which is
    /// optimal even in static graphs.
    pub const fn dac_rate(self) -> f64 {
        0.5
    }

    /// The output phase `pend = ⌈log₂(1/ε)⌉` of Eq. (2).
    ///
    /// After `p` phases the fault-free range is at most `2⁻ᵖ` (inputs are
    /// normalized to `[0,1]`), so this phase guarantees ε-agreement.
    pub fn dac_pend(self) -> u64 {
        pend_for_rate(self.eps, 0.5)
    }

    // --- DBAC (Byzantine model) ---------------------------------------------

    /// Number of distinct senders of phase ≥ own (including the node
    /// itself) that lets DBAC advance: `⌊(n+3f)/2⌋ + 1`.
    pub const fn dbac_quorum(self) -> usize {
        (self.n + 3 * self.f) / 2 + 1
    }

    /// The dynamic degree `D = ⌊(n+3f)/2⌋` for Byzantine approximate
    /// consensus.
    pub const fn dbac_dyna_degree(self) -> usize {
        (self.n + 3 * self.f) / 2
    }

    /// Whether `n ≥ 5f + 1` holds.
    pub const fn dbac_resilient(self) -> bool {
        self.n > 5 * self.f
    }

    /// DBAC's proven per-phase convergence rate bound `1 − 2⁻ⁿ` (Thm. 7).
    ///
    /// This is a worst-case bound; measured contraction is typically far
    /// better (see experiment E06).
    pub fn dbac_rate_bound(self) -> f64 {
        1.0 - pow2_neg(self.n)
    }

    /// The output phase `pend = ⌈ln ε / ln(1 − 2⁻ⁿ)⌉` of Eq. (6),
    /// saturating at `u64::MAX` when `2⁻ⁿ` underflows.
    pub fn dbac_pend(self) -> u64 {
        pend_for_rate(self.eps, 1.0 - pow2_neg(self.n))
    }

    /// Number of lowest (resp. highest) values DBAC retains: `f + 1`.
    pub const fn dbac_list_len(self) -> usize {
        self.f + 1
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} f={} eps={:e}", self.n, self.f, self.eps)
    }
}

/// `2⁻ⁿ` as an `f64`, underflowing to `0` for very large `n`.
fn pow2_neg(n: usize) -> f64 {
    if n >= 1075 {
        0.0
    } else {
        (2.0_f64).powi(-(n as i32))
    }
}

/// Smallest integer `p` with `rateᵖ ≤ eps` (up to float tolerance), i.e.
/// `⌈log_rate ε⌉`, saturating at `u64::MAX` when `rate` rounds to 1 in
/// `f64` (then the float log collapses to zero).
///
/// Both Eq. (2) (`rate = 1/2`) and Eq. (6) (`rate = 1 − 2⁻ⁿ`) are
/// instances. Exactly-representable ratios such as `log₀.₅ 0.125 = 3` are
/// snapped to the integer rather than rounded up by float noise.
pub fn pend_for_rate(eps: f64, rate: f64) -> u64 {
    assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    // ln(rate) via ln_1p for accuracy when rate = 1 - tiny.
    let ln_rate = f64::ln_1p(rate - 1.0);
    if ln_rate == 0.0 {
        // rate rounded to 1.0: no geometric progress is representable.
        return u64::MAX;
    }
    let ratio = eps.ln() / ln_rate;
    let p = (ratio - 1e-9).ceil().max(0.0);
    if p >= u64::MAX as f64 {
        u64::MAX
    } else {
        p as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Params::new(0, 0, 0.1).is_err());
        assert!(Params::new(3, 3, 0.1).is_err());
        assert!(Params::new(3, 0, 0.0).is_err());
        assert!(Params::new(3, 0, 1.5).is_err());
        assert!(Params::new(3, 0, f64::NAN).is_err());
        assert!(Params::new(3, 1, 0.5).is_ok());
        assert!(Params::fault_free(3, 1.0).is_ok());
    }

    #[test]
    fn dac_thresholds_match_paper() {
        // n = 11: quorum floor(11/2)+1 = 6, D = 5.
        let p = Params::new(11, 2, 1e-3).unwrap();
        assert_eq!(p.dac_quorum(), 6);
        assert_eq!(p.dac_dyna_degree(), 5);
        // even n: n = 10 -> quorum 6, D = 5.
        let p = Params::new(10, 2, 1e-3).unwrap();
        assert_eq!(p.dac_quorum(), 6);
        assert_eq!(p.dac_dyna_degree(), 5);
    }

    #[test]
    fn dbac_thresholds_match_paper() {
        // n = 11, f = 2: floor((11+6)/2) = 8, quorum 9.
        let p = Params::new(11, 2, 1e-3).unwrap();
        assert_eq!(p.dbac_dyna_degree(), 8);
        assert_eq!(p.dbac_quorum(), 9);
        assert_eq!(p.dbac_list_len(), 3);
        // n = 6, f = 1: floor(9/2) = 4, quorum 5.
        let p = Params::new(6, 1, 1e-3).unwrap();
        assert_eq!(p.dbac_dyna_degree(), 4);
        assert_eq!(p.dbac_quorum(), 5);
    }

    #[test]
    fn resilience_boundaries() {
        assert!(Params::new(5, 2, 0.1).unwrap().dac_resilient()); // 5 >= 5
        assert!(!Params::new(4, 2, 0.1).unwrap().dac_resilient()); // 4 < 5
        assert!(Params::new(6, 1, 0.1).unwrap().dbac_resilient()); // 6 >= 6
        assert!(!Params::new(5, 1, 0.1).unwrap().dbac_resilient()); // 5 < 6
    }

    #[test]
    fn dac_pend_matches_eq2() {
        let p = Params::fault_free(5, 1e-3).unwrap();
        // 2^-10 = 0.0009765625 <= 1e-3 < 2^-9.
        assert_eq!(p.dac_pend(), 10);
        let p = Params::fault_free(5, 0.5).unwrap();
        assert_eq!(p.dac_pend(), 1);
        let p = Params::fault_free(5, 1.0).unwrap();
        assert_eq!(p.dac_pend(), 0);
    }

    #[test]
    fn dbac_pend_matches_eq6_small_n() {
        let p = Params::new(6, 1, 1e-3).unwrap();
        // rate = 1 - 2^-6 = 0.984375; ln(1e-3)/ln(0.984375) ~ 438.3.
        let pend = p.dbac_pend();
        assert!((438..=440).contains(&pend), "pend = {pend}");
        // Check the defining property: rate^pend <= eps < rate^(pend-1).
        let rate: f64 = 0.984375;
        assert!(rate.powi(pend as i32) <= 1e-3);
        assert!(rate.powi(pend as i32 - 1) > 1e-3);
    }

    #[test]
    fn dbac_pend_saturates_for_huge_n() {
        let p = Params::new(2000, 0, 1e-3).unwrap();
        assert_eq!(p.dbac_pend(), u64::MAX);
    }

    #[test]
    fn pend_for_rate_guards_rounding() {
        // Exactly representable: 0.5^3 = 0.125.
        assert_eq!(pend_for_rate(0.125, 0.5), 3);
        assert_eq!(pend_for_rate(0.1251, 0.5), 3);
        assert_eq!(pend_for_rate(0.1249, 0.5), 4);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn pend_for_rate_rejects_bad_rate() {
        let _ = pend_for_rate(0.5, 1.5);
    }

    #[test]
    fn pend_for_rate_saturates_at_rate_one() {
        assert_eq!(pend_for_rate(0.5, 1.0), u64::MAX);
    }

    #[test]
    fn with_eps_replaces_only_eps() {
        let p = Params::new(7, 1, 0.1).unwrap();
        let q = p.with_eps(0.01).unwrap();
        assert_eq!(q.n(), 7);
        assert_eq!(q.f(), 1);
        assert_eq!(q.eps(), 0.01);
        assert!(p.with_eps(0.0).is_err());
    }

    #[test]
    fn display_mentions_all_fields() {
        let p = Params::new(7, 1, 0.1).unwrap();
        let s = p.to_string();
        assert!(s.contains("n=7") && s.contains("f=1"));
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Crash.to_string(), "crash");
        assert_eq!(FaultKind::Byzantine.to_string(), "byzantine");
        assert_eq!(FaultKind::default(), FaultKind::None);
    }
}
