//! Core vocabulary types for the `anondyn` stack.
//!
//! This crate defines the small, dependency-free types shared by every other
//! crate in the workspace: identifiers ([`NodeId`], [`Port`], [`Round`],
//! [`Phase`]), the bounded consensus state value ([`Value`]), the wire
//! message ([`Message`]), the system parameters ([`Params`]) together with
//! the paper's thresholds and termination formulas, a deterministic seedable
//! RNG ([`rng::SplitMix64`]), and the crate-level error type ([`Error`]).
//!
//! # Model recap
//!
//! The paper ("Fault-tolerant Consensus in Anonymous Dynamic Network",
//! ICDCS 2024) studies `n` anonymous nodes in synchronous rounds. Nodes know
//! `n` and the fault bound `f`, but have no identities; a receiver
//! distinguishes senders only through a private *port numbering*. A dynamic
//! message adversary picks the reliable links each round. Up to `f` nodes
//! crash (algorithm DAC) or act Byzantine (algorithm DBAC).
//!
//! # Example
//!
//! ```
//! use adn_types::{Params, Value};
//!
//! let params = Params::new(11, 2, 1e-3)?;
//! // DAC advances a phase on floor(n/2)+1 distinct same-phase values.
//! assert_eq!(params.dac_quorum(), 6);
//! // DBAC needs floor((n+3f)/2)+1 distinct senders.
//! assert_eq!(params.dbac_quorum(), 9);
//! let v = Value::new(0.25)?;
//! assert!(v <= Value::ONE);
//! # Ok::<(), adn_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod batch;
mod error;
mod ids;
mod message;
mod params;
pub mod rng;
mod value;

pub use batch::Batch;
pub use error::Error;
pub use ids::{NodeId, Phase, Port, Round};
pub use message::Message;
pub use params::{FaultKind, Params};
pub use value::{Value, ValueInterval};

/// Convenient `Result` alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;
