use std::fmt;

use crate::{Phase, Value};

/// The wire message of both DAC and DBAC: a state value plus a phase index.
///
/// The paper assumes each link carries `O(log n)` bits per round (§II-A);
/// our concrete encoding is one `f64` value and one `u64` phase, i.e.
/// [`Message::WIRE_BITS`] bits, which the network substrate uses for
/// bandwidth accounting. The sender field `⟨i, v, p⟩` in the paper's
/// pseudocode is *not* part of the message — anonymity means the receiver
/// learns the sender only through the local port the message arrives on.
///
/// Piggybacking variants (§VII) send several `Message`s at once; the
/// substrate charges them `WIRE_BITS` each.
///
/// ```
/// use adn_types::{Message, Phase, Value};
/// let m = Message::new(Value::HALF, Phase::new(3));
/// assert_eq!(m.phase(), Phase::new(3));
/// assert_eq!(m.value(), Value::HALF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Message {
    // Phase first so the derived lexicographic order sorts by phase, then
    // value — handy when deduplicating piggybacked histories.
    phase: Phase,
    value: Value,
}

impl Message {
    /// Size of one encoded message in bits (64-bit value + 64-bit phase).
    pub const WIRE_BITS: u64 = 128;

    /// Creates a message carrying `value` stamped with `phase`.
    pub const fn new(value: Value, phase: Phase) -> Self {
        Message { phase, value }
    }

    /// The state value carried by the message.
    pub const fn value(self) -> Value {
        self.value
    }

    /// The phase index the sender was in when it broadcast.
    pub const fn phase(self) -> Phase {
        self.phase
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}@{}>", self.value, self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let m = Message::new(Value::new(0.25).unwrap(), Phase::new(7));
        assert_eq!(m.value().get(), 0.25);
        assert_eq!(m.phase().as_u64(), 7);
    }

    #[test]
    fn order_is_phase_major() {
        let lo = Message::new(Value::ONE, Phase::new(1));
        let hi = Message::new(Value::ZERO, Phase::new(2));
        assert!(lo < hi, "phase dominates value in the ordering");
    }

    #[test]
    fn display_mentions_both_fields() {
        let m = Message::new(Value::HALF, Phase::new(2));
        let s = m.to_string();
        assert!(s.contains("0.5") && s.contains("ph2"));
    }

    #[test]
    fn wire_bits_matches_two_u64() {
        assert_eq!(Message::WIRE_BITS, 2 * 64);
    }
}
