use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::Message;

/// A reusable buffer of [`Message`]s — one sender's transmission for one
/// round.
///
/// `Batch` is the unit of the allocation-free message plane: algorithms
/// write their broadcast into a caller-owned `Batch`
/// (`Algorithm::broadcast_into`), Byzantine strategies fabricate
/// per-destination batches the same way (`ByzantineStrategy::
/// messages_into`), and the round engine keeps one `Batch` per node alive
/// across rounds so steady-state rounds never touch the allocator: the
/// buffer is [`clear`](Batch::clear)ed (capacity retained) and refilled.
///
/// Plain DAC/DBAC write exactly one message; piggybacking variants write
/// `1 + k`; an empty batch means staying silent this round.
///
/// ```
/// use adn_types::{Batch, Message, Phase, Value};
///
/// let mut b = Batch::new();
/// b.push(Message::new(Value::HALF, Phase::ZERO));
/// assert_eq!(b.len(), 1);
/// let cap = b.capacity();
/// b.clear(); // ready for the next round, capacity retained
/// assert!(b.is_empty());
/// assert_eq!(b.capacity(), cap);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Batch {
    msgs: Vec<Message>,
}

impl Batch {
    /// Creates an empty batch with no allocation yet.
    pub const fn new() -> Self {
        Batch { msgs: Vec::new() }
    }

    /// Creates an empty batch that can hold `cap` messages without
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Batch {
            msgs: Vec::with_capacity(cap),
        }
    }

    /// Empties the batch, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    /// Appends one message.
    pub fn push(&mut self, msg: Message) {
        self.msgs.push(msg);
    }

    /// The messages as a slice (also available via deref).
    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Current allocated capacity in messages.
    pub fn capacity(&self) -> usize {
        self.msgs.capacity()
    }

    /// Consumes the batch into its backing vector (used by the
    /// `Vec`-returning compatibility shims).
    pub fn into_vec(self) -> Vec<Message> {
        self.msgs
    }
}

impl Deref for Batch {
    type Target = [Message];

    fn deref(&self) -> &[Message] {
        &self.msgs
    }
}

impl DerefMut for Batch {
    /// Mutable access to the staged messages — wrappers like the
    /// quantized encoder snap values in place instead of re-staging.
    fn deref_mut(&mut self) -> &mut [Message] {
        &mut self.msgs
    }
}

impl Extend<Message> for Batch {
    fn extend<I: IntoIterator<Item = Message>>(&mut self, iter: I) {
        self.msgs.extend(iter);
    }
}

impl From<Vec<Message>> for Batch {
    fn from(msgs: Vec<Message>) -> Self {
        Batch { msgs }
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

impl fmt::Debug for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.msgs.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, Value};

    fn msg(p: u64) -> Message {
        Message::new(Value::HALF, Phase::new(p))
    }

    #[test]
    fn push_clear_retains_capacity() {
        let mut b = Batch::new();
        for p in 0..8 {
            b.push(msg(p));
        }
        let cap = b.capacity();
        assert!(cap >= 8);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must not shrink");
        b.push(msg(9));
        assert_eq!(b.len(), 1);
        assert_eq!(b.capacity(), cap, "refill within capacity: no realloc");
    }

    #[test]
    fn deref_exposes_slice_ops() {
        let mut b = Batch::with_capacity(2);
        b.push(msg(0));
        b.push(msg(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b[1], msg(1));
        assert_eq!(b.iter().count(), 2);
        for m in &b {
            assert_eq!(m.value(), Value::HALF);
        }
    }

    #[test]
    fn deref_mut_edits_in_place() {
        let mut b = Batch::new();
        b.push(msg(0));
        b[0] = msg(7);
        assert_eq!(b.as_slice(), &[msg(7)]);
    }

    #[test]
    fn vec_roundtrip() {
        let b: Batch = vec![msg(0), msg(1)].into();
        assert_eq!(b.len(), 2);
        assert_eq!(b.into_vec(), vec![msg(0), msg(1)]);
    }

    #[test]
    fn extend_appends() {
        let mut b = Batch::new();
        b.extend([msg(0), msg(1)]);
        assert_eq!(b.len(), 2);
    }
}
