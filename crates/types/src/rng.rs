//! A small, deterministic, seedable RNG used everywhere randomness is
//! needed in the simulator.
//!
//! Determinism is a hard requirement of the execution substrate (§5.7 of
//! DESIGN.md): the same seed must always replay the identical execution, on
//! any platform. We therefore avoid thread-local or hardware entropy and
//! route *all* randomness through [`SplitMix64`] (Steele, Lea & Flood 2014),
//! a tiny full-period generator that is more than adequate for workload and
//! topology sampling (it is not, and need not be, cryptographic).

/// Deterministic 64-bit generator with split-off substreams.
///
/// ```
/// use adn_types::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Splits off an independent substream.
    ///
    /// The child stream is seeded from this stream's output, so parents with
    /// equal seeds produce equal families of children. Used to give every
    /// component (adversary, faults, workload, ports) its own stream so that
    /// adding draws in one component never perturbs another.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (in random order).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher-Yates over an index vector: O(n) setup, fine for
        // simulator scales (n is in the tens or hundreds).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Returns a random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        self.sample_indices(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_hits_every_residue() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = SplitMix64::new(6);
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }

    #[test]
    fn split_streams_are_independent_of_parent_draws() {
        let mut p1 = SplitMix64::new(9);
        let c1 = p1.split();
        let mut p2 = SplitMix64::new(9);
        let c2 = p2.split();
        assert_eq!(c1, c2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(10);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SplitMix64::new(11);
        for _ in 0..50 {
            let s = r.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4);
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_all_is_permutation() {
        let mut r = SplitMix64::new(12);
        let mut p = r.permutation(8);
        p.sort_unstable();
        assert_eq!(p, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        SplitMix64::new(13).sample_indices(3, 4);
    }

    #[test]
    fn uniformity_smoke_chi_square() {
        // Very loose sanity check that next_index is roughly uniform.
        let mut r = SplitMix64::new(14);
        let mut counts = [0u32; 8];
        let draws = 8000;
        for _ in 0..draws {
            counts[r.next_index(8)] += 1;
        }
        let expected = draws as f64 / 8.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 7 degrees of freedom; 99.9th percentile is ~24.3.
        assert!(chi2 < 24.3, "chi2 = {chi2}");
    }
}
