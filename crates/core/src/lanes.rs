//! The trial-lane plane: up to 64 independent Monte-Carlo trials of one
//! configuration stepped in lockstep, one bit lane per trial.
//!
//! The columnar [`AlgorithmPlane`](crate::AlgorithmPlane) applied the
//! 64-bit word-parallel trick across *nodes*; this plane applies it
//! across *seeds*. Every bit-shaped column of the scalar plane (the
//! per-phase `ports_seen` dedup row, the decided flag) becomes one `u64`
//! **lane word** per `(node, fact)` — bit `t` of a word is trial `t` —
//! while the scalar value columns (`value`/`vmin`/`vmax`, the DBAC trim
//! lists) stay per-lane slabs stepped under a divergence mask. One
//! delivery call then updates every live trial of a link with a single
//! dedup word op plus one scalar tail per *diverged* lane, and sweeps
//! (E12, the statistical suites) amortize the whole per-round driver cost
//! over 64 trials.
//!
//! The contract mirrors the scalar plane's: every lane must be
//! byte-identical to its own single-trial scalar run — same outcomes,
//! same rounds, same final phases — which `tests/lane_equivalence.rs`
//! fuzzes across seeds × adversaries × crash mixes. The lane planes are
//! therefore literal per-lane transcriptions of `DacCols` / `DbacCols`
//! with the lane index folded into every slab offset.

use std::fmt;

use adn_graph::NodeSet;
use adn_types::{Params, Phase, Port, Value};

use crate::dbac::{max_index, min_index};

/// Number of trials one lane word holds (bit `t` of a word is trial `t`).
pub const LANE_WIDTH: usize = 64;

/// Columnar state of one algorithm across all `n` node slots **and** up
/// to [`LANE_WIDTH`] trial lanes.
///
/// Slab layout is lane-minor: per-lane scalar slot `(v, t)` lives at
/// index `v * LANE_WIDTH + t`, and constructor input vectors are
/// **lane-major** (`inputs[t * n + v]` is trial `t`'s input for node
/// `v`), matching the harvest order of `TrialPool::run_lanes`.
///
/// # Contract
///
/// Each lane must be observationally identical to a scalar
/// [`AlgorithmPlane`](crate::AlgorithmPlane) run of that trial alone,
/// with deliveries applied in the same per-receiver order. The driver
/// guarantees:
///
/// * [`LanePlane::begin_round`] is called once per round before any
///   delivery — the plane snapshots its `(value, phase)` slabs, and every
///   delivery of the round reads the sender's snapshot (the scalar
///   engine's start-of-round broadcast capture);
/// * [`LanePlane::deliver_link`] is called at most once per `(sender,
///   receiver)` pair per round, receivers walked with ascending senders —
///   the scalar engine's `AscendingSenders` order;
/// * the `live` / `mask` words only ever contain lanes that have not been
///   retired by the driver (a retired lane's state stays frozen exactly
///   where its scalar run stopped).
pub trait LanePlane: fmt::Debug {
    /// Number of node slots.
    fn n(&self) -> usize;

    /// Number of populated trial lanes (bits `0..lanes` of every word).
    fn lanes(&self) -> usize;

    /// Snapshots the `(value, phase)` slabs as this round's broadcast
    /// wire state. Deliveries of the round read the snapshot, never the
    /// live (mutating) slabs.
    fn begin_round(&mut self);

    /// Delivers sender `sender`'s snapshot broadcast to `receiver` on
    /// `port`, for every lane set in `mask`.
    fn deliver_link(&mut self, receiver: usize, port: Port, sender: usize, mask: u64);

    /// End-of-round advance hook for every slot in `executing`, applied
    /// to every lane set in `live` (the scalar plane's `end_round`).
    fn end_round(&mut self, executing: &NodeSet, live: u64);

    /// Slot `v`'s current phase in lane `lane`.
    fn phase_of(&self, v: usize, lane: usize) -> Phase;

    /// Slot `v`'s current value in lane `lane`.
    fn value_of(&self, v: usize, lane: usize) -> Value;

    /// Slot `v`'s decided output in lane `lane`, `None` before the
    /// termination rule fires.
    fn output_of(&self, v: usize, lane: usize) -> Option<Value>;

    /// Copies lane `lane`'s per-slot phases and values into the given
    /// buffers (both of length [`LanePlane::n`]) — the driver's adversary
    /// view snapshot, taken before any delivery of the round so it equals
    /// the start-of-round state. Implementations override this with
    /// direct slab strides; the default routes through the per-slot
    /// accessors.
    fn snapshot_lane(&self, lane: usize, phases: &mut [Phase], values: &mut [Value]) {
        for v in 0..self.n() {
            phases[v] = self.phase_of(v, lane);
            values[v] = self.value_of(v, lane);
        }
    }

    /// The lane word of slot `v`'s decided flags: bit `t` set iff lane
    /// `t` of slot `v` has output. ANDing these words over the fault-free
    /// slots yields the all-output lanes in one fold.
    fn decided_word(&self, v: usize) -> u64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// [`Dac`](crate::Dac) across up to 64 trial lanes — the lane
/// transcription of the scalar `DacPlane`.
pub struct DacLanes {
    pend: u64,
    foreign_quorum: u32,
    n: usize,
    lanes: usize,
    /// Per-lane scalars, indexed `v * LANE_WIDTH + t`.
    phase: Vec<Phase>,
    value: Vec<Value>,
    vmin: Vec<Value>,
    vmax: Vec<Value>,
    seen_count: Vec<u32>,
    /// Start-of-round broadcast snapshots of `value` / `phase`.
    wire_value: Vec<Value>,
    wire_phase: Vec<Phase>,
    /// Lane words, one per `(receiver, port)` at `v * n + port`: bit `t`
    /// set iff lane `t` of `v` counted that port this phase.
    ports_seen: Vec<u64>,
    /// Lane words, one per slot: bit `t` set iff lane `t` of `v` decided.
    /// `value` freezes at decision (the process loop early-outs on the
    /// decided bit), so the decided value *is* the output — no output
    /// slab.
    decided: Vec<u64>,
}

impl DacLanes {
    /// Creates the lane plane from a **lane-major** input vector
    /// (`inputs[t * n + v]` is trial `t`'s input for node `v`), with the
    /// paper's default `pend`.
    pub fn new(params: Params, inputs: &[Value]) -> Self {
        DacLanes::with_pend(params, inputs, params.dac_pend())
    }

    /// Creates the lane plane with an explicit termination phase.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a positive multiple of
    /// `params.n()` of at most [`LANE_WIDTH`] lanes.
    pub fn with_pend(params: Params, inputs: &[Value], pend: u64) -> Self {
        let n = params.n();
        let lanes = inputs.len() / n;
        assert!(
            (1..=LANE_WIDTH).contains(&lanes) && inputs.len() == lanes * n,
            "inputs must hold 1..=64 full lanes of n values"
        );
        let mut plane = DacLanes {
            pend,
            foreign_quorum: (params.dac_quorum() - 1) as u32,
            n,
            lanes,
            phase: vec![Phase::ZERO; n * LANE_WIDTH],
            value: vec![Value::HALF; n * LANE_WIDTH],
            vmin: vec![Value::HALF; n * LANE_WIDTH],
            vmax: vec![Value::HALF; n * LANE_WIDTH],
            seen_count: vec![0; n * LANE_WIDTH],
            wire_value: vec![Value::HALF; n * LANE_WIDTH],
            wire_phase: vec![Phase::ZERO; n * LANE_WIDTH],
            ports_seen: vec![0; n * n],
            decided: vec![0; n],
        };
        for t in 0..lanes {
            for v in 0..n {
                let vi = v * LANE_WIDTH + t;
                let input = inputs[t * n + v];
                plane.value[vi] = input;
                plane.vmin[vi] = input;
                plane.vmax[vi] = input;
                // The scalar constructor's maybe_output sweep.
                if pend == 0 {
                    plane.decided[v] |= 1 << t;
                }
            }
        }
        plane
    }

    /// Alg. 1 `RESET()` for lane `t` of slot `v` — `DacCols::reset` with
    /// the port-row clear narrowed to this lane's bit.
    #[inline]
    fn reset_lane(&mut self, v: usize, bit: u64, vi: usize) {
        let keep = !bit;
        for w in &mut self.ports_seen[v * self.n..(v + 1) * self.n] {
            *w &= keep;
        }
        self.seen_count[vi] = 0;
        self.vmin[vi] = self.value[vi];
        self.vmax[vi] = self.value[vi];
    }

    /// `DacCols::process` transcribed for lane `t` of slot `v`; the
    /// caller has already masked out decided lanes (the scalar `p >=
    /// pend` early-out).
    #[inline]
    fn process_lane(&mut self, v: usize, t: usize, port: usize, u: usize) {
        let bit = 1u64 << t;
        let vi = v * LANE_WIDTH + t;
        let ui = u * LANE_WIDTH + t;
        let p = self.phase[vi];
        let q = self.wire_phase[ui];
        if q > p {
            // Jump: adopt the future state wholesale.
            self.value[vi] = self.wire_value[ui];
            self.phase[vi] = q;
            self.reset_lane(v, bit, vi);
        } else if q == p {
            let slot = &mut self.ports_seen[v * self.n + port];
            if *slot & bit != 0 {
                return; // duplicate port: nothing changed
            }
            *slot |= bit;
            let seen = self.seen_count[vi] + 1;
            self.seen_count[vi] = seen;
            let mv = self.wire_value[ui];
            if mv < self.vmin[vi] {
                self.vmin[vi] = mv;
            } else if mv > self.vmax[vi] {
                self.vmax[vi] = mv;
            }
            if seen < self.foreign_quorum {
                return;
            }
        } else {
            return; // stale: nothing changed
        }
        self.try_advance_lane(v, bit, vi);
    }

    /// `DacCols::try_advance` for one lane; the `maybe_output` tail is
    /// the decided-bit set (value freezes from then on).
    #[inline]
    fn try_advance_lane(&mut self, v: usize, bit: u64, vi: usize) {
        while self.seen_count[vi] >= self.foreign_quorum && self.phase[vi].as_u64() < self.pend {
            self.value[vi] = self.vmin[vi].midpoint(self.vmax[vi]);
            self.phase[vi] = self.phase[vi].next();
            self.reset_lane(v, bit, vi);
        }
        if self.phase[vi].as_u64() >= self.pend {
            self.decided[v] |= bit;
        }
    }
}

impl fmt::Debug for DacLanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DacLanes(n={}, lanes={})", self.n, self.lanes)
    }
}

impl LanePlane for DacLanes {
    fn n(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn begin_round(&mut self) {
        self.wire_value.copy_from_slice(&self.value);
        self.wire_phase.copy_from_slice(&self.phase);
    }

    fn deliver_link(&mut self, receiver: usize, port: Port, sender: usize, mask: u64) {
        // Decided lanes keep broadcasting but no longer update — the
        // scalar process early-out, word-parallel.
        let mut m = mask & !self.decided[receiver];
        let port = port.index();
        while m != 0 {
            let t = m.trailing_zeros() as usize;
            m &= m - 1;
            self.process_lane(receiver, t, port, sender);
        }
    }

    fn end_round(&mut self, executing: &NodeSet, live: u64) {
        executing.for_each(|id| {
            let v = id.index();
            // try_advance on a decided lane is a no-op — skip it.
            let mut m = live & !self.decided[v];
            while m != 0 {
                let t = m.trailing_zeros() as usize;
                m &= m - 1;
                self.try_advance_lane(v, 1 << t, v * LANE_WIDTH + t);
            }
        });
    }

    fn phase_of(&self, v: usize, lane: usize) -> Phase {
        self.phase[v * LANE_WIDTH + lane]
    }

    fn value_of(&self, v: usize, lane: usize) -> Value {
        self.value[v * LANE_WIDTH + lane]
    }

    fn output_of(&self, v: usize, lane: usize) -> Option<Value> {
        (self.decided[v] & (1 << lane) != 0).then(|| self.value[v * LANE_WIDTH + lane])
    }

    fn snapshot_lane(&self, lane: usize, phases: &mut [Phase], values: &mut [Value]) {
        for v in 0..self.n {
            phases[v] = self.phase[v * LANE_WIDTH + lane];
            values[v] = self.value[v * LANE_WIDTH + lane];
        }
    }

    fn decided_word(&self, v: usize) -> u64 {
        self.decided[v]
    }

    fn name(&self) -> &'static str {
        "dac-lanes"
    }
}

/// [`Dbac`](crate::Dbac) across up to 64 trial lanes — the lane
/// transcription of the scalar `DbacPlane`. Byzantine fabrication is a
/// driver-level axis the lane path never sees (the driver falls back to
/// scalar runs), so the plane only handles honest `(value, phase)`
/// snapshots.
pub struct DbacLanes {
    pend: u64,
    foreign_quorum: u32,
    cap: usize,
    n: usize,
    lanes: usize,
    /// Per-lane scalars, indexed `v * LANE_WIDTH + t`.
    phase: Vec<Phase>,
    value: Vec<Value>,
    seen_count: Vec<u32>,
    /// Per-lane trim lists, indexed `(v * LANE_WIDTH + t) * cap + j`.
    low: Vec<Value>,
    low_len: Vec<u32>,
    high: Vec<Value>,
    high_len: Vec<u32>,
    /// Start-of-round broadcast snapshots of `value` / `phase`.
    wire_value: Vec<Value>,
    wire_phase: Vec<Phase>,
    /// Lane words, one per `(receiver, port)` at `v * n + port`.
    ports_seen: Vec<u64>,
    /// Lane words of decided flags, one per slot (see [`DacLanes`]).
    decided: Vec<u64>,
}

impl DbacLanes {
    /// Creates the lane plane from a **lane-major** input vector with the
    /// paper's Eq. (6) `pend`.
    pub fn new(params: Params, inputs: &[Value]) -> Self {
        DbacLanes::with_pend(params, inputs, params.dbac_pend())
    }

    /// Creates the lane plane with an explicit termination phase.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a positive multiple of
    /// `params.n()` of at most [`LANE_WIDTH`] lanes.
    pub fn with_pend(params: Params, inputs: &[Value], pend: u64) -> Self {
        let n = params.n();
        let lanes = inputs.len() / n;
        assert!(
            (1..=LANE_WIDTH).contains(&lanes) && inputs.len() == lanes * n,
            "inputs must hold 1..=64 full lanes of n values"
        );
        let cap = params.dbac_list_len();
        let mut plane = DbacLanes {
            pend,
            foreign_quorum: (params.dbac_quorum() - 1) as u32,
            cap,
            n,
            lanes,
            phase: vec![Phase::ZERO; n * LANE_WIDTH],
            value: vec![Value::HALF; n * LANE_WIDTH],
            seen_count: vec![0; n * LANE_WIDTH],
            low: vec![Value::HALF; n * LANE_WIDTH * cap],
            low_len: vec![0; n * LANE_WIDTH],
            high: vec![Value::HALF; n * LANE_WIDTH * cap],
            high_len: vec![0; n * LANE_WIDTH],
            wire_value: vec![Value::HALF; n * LANE_WIDTH],
            wire_phase: vec![Phase::ZERO; n * LANE_WIDTH],
            ports_seen: vec![0; n * n],
            decided: vec![0; n],
        };
        for t in 0..lanes {
            for v in 0..n {
                let vi = v * LANE_WIDTH + t;
                plane.value[vi] = inputs[t * n + v];
                // The scalar constructor's reset + maybe_output sweep.
                plane.reset_lane(v, 1 << t, vi);
                if pend == 0 {
                    plane.decided[v] |= 1 << t;
                }
            }
        }
        plane
    }

    /// Alg. 2 `RESET()` + self-store for lane `t` of slot `v`
    /// (`DbacCols::reset`).
    #[inline]
    fn reset_lane(&mut self, v: usize, bit: u64, vi: usize) {
        let keep = !bit;
        for w in &mut self.ports_seen[v * self.n..(v + 1) * self.n] {
            *w &= keep;
        }
        self.seen_count[vi] = 0;
        if self.cap == 1 {
            self.low[vi] = self.value[vi];
            self.high[vi] = self.value[vi];
            self.low_len[vi] = 1;
            self.high_len[vi] = 1;
        } else {
            self.low_len[vi] = 0;
            self.high_len[vi] = 0;
            self.store_lane(vi, self.value[vi]);
        }
    }

    /// Alg. 2 `STORE(v_j)` for one lane slot — `DbacCols::store` with the
    /// trim-list base moved to the lane slab.
    #[inline]
    fn store_lane(&mut self, vi: usize, val: Value) {
        if self.cap == 1 {
            if val < self.low[vi] {
                self.low[vi] = val;
            }
            if val > self.high[vi] {
                self.high[vi] = val;
            }
            return;
        }
        let base = vi * self.cap;
        let llen = self.low_len[vi] as usize;
        if llen < self.cap {
            self.low[base + llen] = val;
            self.low_len[vi] += 1;
        } else if let Some(max_idx) = max_index(&self.low[base..base + llen]) {
            if val < self.low[base + max_idx] {
                self.low[base + max_idx] = val;
            }
        }
        let hlen = self.high_len[vi] as usize;
        if hlen < self.cap {
            self.high[base + hlen] = val;
            self.high_len[vi] += 1;
        } else if let Some(min_idx) = min_index(&self.high[base..base + hlen]) {
            if val > self.high[base + min_idx] {
                self.high[base + min_idx] = val;
            }
        }
    }

    /// `DbacCols::process` transcribed for lane `t` of slot `v`; the
    /// caller has already masked out decided lanes.
    #[inline]
    fn process_lane(&mut self, v: usize, t: usize, port: usize, u: usize) {
        let bit = 1u64 << t;
        let vi = v * LANE_WIDTH + t;
        let ui = u * LANE_WIDTH + t;
        let p = self.phase[vi];
        if self.wire_phase[ui] >= p {
            let slot = &mut self.ports_seen[v * self.n + port];
            if *slot & bit == 0 {
                *slot |= bit;
                let seen = self.seen_count[vi] + 1;
                self.seen_count[vi] = seen;
                if self.cap == 1 {
                    // The degenerate f = 0 trim, inline as in the scalar.
                    let val = self.wire_value[ui];
                    if val < self.low[vi] {
                        self.low[vi] = val;
                    }
                    if val > self.high[vi] {
                        self.high[vi] = val;
                    }
                } else {
                    self.store_lane(vi, self.wire_value[ui]);
                }
                if seen >= self.foreign_quorum {
                    self.try_advance_lane(v, bit, vi);
                }
            }
        }
    }

    /// `DbacCols::try_advance` for one lane.
    // audit: no-alloc-fn
    #[inline]
    fn try_advance_lane(&mut self, v: usize, bit: u64, vi: usize) {
        while self.seen_count[vi] >= self.foreign_quorum && self.phase[vi].as_u64() < self.pend {
            let (lo, hi) = if self.cap == 1 {
                (self.low[vi], self.high[vi])
            } else {
                let base = vi * self.cap;
                let (Some(&lo), Some(&hi)) = (
                    self.low[base..base + self.low_len[vi] as usize]
                        .iter()
                        .max(),
                    self.high[base..base + self.high_len[vi] as usize]
                        .iter()
                        .min(),
                ) else {
                    debug_assert!(false, "low/high lists are never empty at quorum");
                    return;
                };
                (lo, hi)
            };
            self.value[vi] = lo.midpoint(hi);
            self.phase[vi] = self.phase[vi].next();
            self.reset_lane(v, bit, vi);
        }
        if self.phase[vi].as_u64() >= self.pend {
            self.decided[v] |= bit;
        }
    }
}

impl fmt::Debug for DbacLanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DbacLanes(n={}, lanes={})", self.n, self.lanes)
    }
}

impl LanePlane for DbacLanes {
    fn n(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn begin_round(&mut self) {
        self.wire_value.copy_from_slice(&self.value);
        self.wire_phase.copy_from_slice(&self.phase);
    }

    fn deliver_link(&mut self, receiver: usize, port: Port, sender: usize, mask: u64) {
        let mut m = mask & !self.decided[receiver];
        let port = port.index();
        while m != 0 {
            let t = m.trailing_zeros() as usize;
            m &= m - 1;
            self.process_lane(receiver, t, port, sender);
        }
    }

    fn end_round(&mut self, executing: &NodeSet, live: u64) {
        executing.for_each(|id| {
            let v = id.index();
            let mut m = live & !self.decided[v];
            while m != 0 {
                let t = m.trailing_zeros() as usize;
                m &= m - 1;
                self.try_advance_lane(v, 1 << t, v * LANE_WIDTH + t);
            }
        });
    }

    fn phase_of(&self, v: usize, lane: usize) -> Phase {
        self.phase[v * LANE_WIDTH + lane]
    }

    fn value_of(&self, v: usize, lane: usize) -> Value {
        self.value[v * LANE_WIDTH + lane]
    }

    fn output_of(&self, v: usize, lane: usize) -> Option<Value> {
        (self.decided[v] & (1 << lane) != 0).then(|| self.value[v * LANE_WIDTH + lane])
    }

    fn snapshot_lane(&self, lane: usize, phases: &mut [Phase], values: &mut [Value]) {
        for v in 0..self.n {
            phases[v] = self.phase[v * LANE_WIDTH + lane];
            values[v] = self.value[v * LANE_WIDTH + lane];
        }
    }

    fn decided_word(&self, v: usize) -> u64 {
        self.decided[v]
    }

    fn name(&self) -> &'static str {
        "dbac-lanes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::AlgorithmPlane;
    use adn_types::NodeId;

    fn params(n: usize) -> Params {
        Params::fault_free(n, 0.25).unwrap()
    }

    #[test]
    fn lane_zero_matches_scalar_plane_one_round() {
        // One complete-graph round, 3 lanes with distinct inputs: each
        // lane must match a scalar DacPlane run of its own inputs.
        let n = 4;
        let p = params(n);
        let lane_inputs: Vec<Vec<Value>> = (0..3)
            .map(|t| {
                (0..n)
                    .map(|v| Value::new((t * n + v) as f64 / (3 * n) as f64).unwrap())
                    .collect()
            })
            .collect();
        let flat: Vec<Value> = lane_inputs.iter().flatten().copied().collect();
        let mut lanes = DacLanes::with_pend(p, &flat, 4);
        let mut scalars: Vec<crate::DacPlane> = lane_inputs
            .iter()
            .map(|inp| crate::DacPlane::with_pend(p, inp, 4))
            .collect();
        let ports: Vec<Port> = (0..n).map(Port::new).collect();
        let mut everyone = NodeSet::new(n);
        for v in 0..n {
            everyone.insert(NodeId::new(v));
        }
        for _ in 0..3 {
            lanes.begin_round();
            let snapshots: Vec<(Vec<Value>, Vec<Phase>)> = scalars
                .iter()
                .map(|s| (s.values().to_vec(), s.phases().to_vec()))
                .collect();
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    lanes.deliver_link(v, ports[u], u, 0b111);
                    for (t, s) in scalars.iter_mut().enumerate() {
                        let (vals, phs) = &snapshots[t];
                        s.receive(v, ports[u], &[adn_types::Message::new(vals[u], phs[u])]);
                    }
                }
            }
            lanes.end_round(&everyone, 0b111);
            for s in scalars.iter_mut() {
                s.end_round(&everyone);
            }
            for (t, s) in scalars.iter().enumerate() {
                for v in 0..n {
                    assert_eq!(lanes.phase_of(v, t), s.phases()[v]);
                    assert_eq!(lanes.value_of(v, t), s.values()[v]);
                    assert_eq!(lanes.output_of(v, t), s.outputs()[v]);
                }
            }
        }
    }

    #[test]
    fn pend_zero_decides_at_construction() {
        let n = 3;
        let inputs = vec![Value::HALF; n];
        let lanes = DacLanes::with_pend(params(n), &inputs, 0);
        for v in 0..n {
            assert_eq!(lanes.output_of(v, 0), Some(Value::HALF));
        }
        assert_eq!(lanes.decided_word(0), 1);
    }
}
