//! The columnar algorithm plane: all fault-free nodes' state as flat
//! arrays, driven sender-major.
//!
//! The [`Algorithm`](crate::Algorithm) trait models one node as one boxed
//! state machine — the semantic reference, and the only interface exotic
//! algorithms (piggybacking, baselines, strawmen) implement. But on the
//! simulator's hot path it costs one virtual call *per delivered message*:
//! at `n = 1024` that is ~1M dynamic dispatches per round, now the
//! dominant round cost. DAC and DBAC don't need that generality:
//!
//! * their broadcast is always exactly one `(value, phase)` message — a
//!   snapshot of two state columns;
//! * anonymity means a sender's message is **identical at every
//!   receiver** — classify the sender once, then apply the one message to
//!   all its out-neighbors;
//! * each receiver splits into exactly three cases per message — **jump**
//!   (sender ahead: adopt wholesale), **same-phase** (one port bit + a
//!   min/max or trim fold), **stale** (skip).
//!
//! [`AlgorithmPlane`] captures that shape: one object holds *every*
//! node's state in struct-of-arrays layout ([`DacPlane`], [`DbacPlane`]),
//! and the engine delivers one *sender's* broadcast to a whole receiver
//! bitset per (non-virtual-per-message) call. The trait path remains the
//! behavioral oracle: planes must be observationally **identical** to a
//! per-node state machine run under ascending-sender delivery —
//! `tests/plane_equivalence.rs` fuzzes that contract across adversaries,
//! crash/Byzantine mixes, and ε.

use std::fmt;

use adn_graph::NodeSet;
use adn_types::{Message, Params, Phase, Port, Value};

use crate::dbac::{max_index, min_index};

/// Columnar state of one algorithm across **all** `n` node slots.
///
/// The engine materializes a plane instead of `n` boxed
/// [`Algorithm`](crate::Algorithm)s when the factory declares itself
/// plane-capable. Slots of Byzantine nodes exist but are never driven
/// (never delivered to, never advanced) — the engine masks them out.
///
/// # Contract
///
/// Implementations must be observationally identical to running one
/// trait-object state machine per slot with deliveries applied in the
/// same order. In particular:
///
/// * a slot's broadcast is always exactly its `(value, phase)` pair and
///   mutates nothing — planes are only for such algorithms. The engine
///   therefore never asks the plane for broadcasts: it reads its own
///   start-of-round snapshot of the [`phases`](AlgorithmPlane::phases) /
///   [`values`](AlgorithmPlane::values) columns, which stays correct
///   while the live plane mutates as earlier senders of the round
///   deliver;
/// * [`AlgorithmPlane::receive`] mirrors `Algorithm::receive` message for
///   message (the engine routes Byzantine fabrications and crash-round
///   partial broadcasts through it link by link);
/// * [`AlgorithmPlane::deliver_from_sender`] applies one single-message
///   broadcast to every receiver in a set, ascending — the bulk fast
///   path.
pub trait AlgorithmPlane: fmt::Debug {
    /// Number of node slots (the system size `n`).
    fn n(&self) -> usize;

    /// Per-slot phase column (Byzantine slots hold their initial state).
    fn phases(&self) -> &[Phase];

    /// Per-slot current-value column.
    fn values(&self) -> &[Value];

    /// Per-slot decided-output column (`None` until the slot's
    /// termination rule fires).
    fn outputs(&self) -> &[Option<Value>];

    /// Maps one outgoing honest broadcast to what actually crosses the
    /// wire. The identity by default; wire-format adaptors (the quantized
    /// plane in `adn-sim`) override it to snap the value to their codec
    /// grid. The engine calls it **once per transmitting non-Byzantine
    /// sender per round** — anonymity means every receiver sees the same
    /// encoded message, so per-link encoding would be redundant work —
    /// and routes Byzantine fabrications around it (a strategy's batch
    /// already is the wire content, exactly as on the trait path, where
    /// fabrications bypass the `Quantized` broadcast wrapper too).
    fn encode_wire(&self, msg: Message) -> Message {
        msg
    }

    /// Delivers one sender's staged broadcast `msg` (already passed
    /// through [`AlgorithmPlane::encode_wire`] by the engine) to every
    /// receiver in `receivers`, in ascending receiver order. `ports[v]`
    /// is the local port receiver `v` hears this sender on (the sender's
    /// transposed port column). The sender itself is never in `receivers`
    /// (self-delivery is internal, as for the trait path).
    fn deliver_from_sender(&mut self, msg: Message, receivers: &NodeSet, ports: &[Port]);

    /// Delivers an arbitrary batch to one receiver — the per-link path
    /// for Byzantine fabrications and crash-round partial broadcasts.
    /// Mirrors `Algorithm::receive` exactly.
    fn receive(&mut self, receiver: usize, port: Port, batch: &[Message]);

    /// Delivers one round's worth of single-message links to one
    /// receiver, in slice order — the receiver-major path the sparse link
    /// plane drives (each entry is one sender's broadcast on the port the
    /// receiver hears it on, senders ascending). Must be observationally
    /// identical to calling [`AlgorithmPlane::receive`] once per entry;
    /// the default does exactly that, while the columnar planes override
    /// it to split their columns once per receiver instead of per link.
    // audit: no-alloc
    fn receive_many(&mut self, receiver: usize, batch: &[(Port, Message)]) {
        for &(port, msg) in batch {
            self.receive(receiver, port, std::slice::from_ref(&msg));
        }
    }

    /// Splits the plane into per-receiver-range [`PlaneShard`]s for the
    /// sharded delivery loop: shard `i` owns receivers
    /// `bounds[i]..bounds[i + 1]` and only ever mutates their columns, so
    /// the shards can be driven from different threads. Returns `false`
    /// (leaving `out` untouched) when the plane cannot shard — the
    /// default, which makes the engine fall back to single-shard
    /// delivery. Wire-format adaptors must **not** forward this to an
    /// inner plane: a shard drives the inner columns directly and would
    /// bypass the adaptor's decode.
    ///
    /// `bounds` is ascending with `bounds[0] == 0`, ends at
    /// [`AlgorithmPlane::n`], and has one more entry than `out`.
    fn fill_shards<'a>(&'a mut self, bounds: &[usize], out: &mut [Option<PlaneShard<'a>>]) -> bool {
        let _ = (bounds, out);
        false
    }

    /// End-of-round hook for every slot in `executing`, ascending —
    /// mirrors `Algorithm::end_round`.
    fn end_round(&mut self, executing: &NodeSet);

    /// Resets every slot to its initial state against a fresh input
    /// vector, in place, as if the plane were freshly constructed —
    /// the columnar half of the service layer's allocation-free instance
    /// turnover (the per-node half is `Algorithm::reset_instance`).
    /// Returns `false` (leaving the plane untouched) when in-place resets
    /// are unsupported, making the service layer refuse rather than
    /// silently rebuild. The DAC/DBAC planes override this; wire-format
    /// adaptors forward it to their inner plane (resetting state columns
    /// does not touch the wire encoding).
    ///
    /// # Panics
    ///
    /// Implementations panic if `inputs.len() != self.n()`.
    fn reset_instance(&mut self, inputs: &[Value]) -> bool {
        let _ = inputs;
        false
    }

    /// Short algorithm name for reports (matches the trait
    /// implementation's `name`).
    fn name(&self) -> &'static str;
}

/// Upper bound on delivery shards a plane can be split into
/// ([`AlgorithmPlane::fill_shards`]); the engine sizes its fixed shard
/// scratch against it.
pub const MAX_PLANE_SHARDS: usize = 8;

/// One receiver-range slice of a columnar plane
/// (see [`AlgorithmPlane::fill_shards`]): exclusive `&mut` views of the
/// columns for receivers `base..base + len`, safe to drive from its own
/// thread while sibling shards run on theirs.
pub struct PlaneShard<'a> {
    base: usize,
    repr: ShardRepr<'a>,
}

enum ShardRepr<'a> {
    Dac(DacCols<'a>),
    Dbac(DbacCols<'a>),
}

impl PlaneShard<'_> {
    /// First receiver this shard owns.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Delivers one round's worth of single-message links to `receiver`
    /// (a **global** slot index inside this shard's range), in slice
    /// order — the sharded mirror of [`AlgorithmPlane::receive_many`].
    #[inline]
    pub fn receive_many(&mut self, receiver: usize, batch: &[(Port, Message)]) {
        let v = receiver - self.base;
        match &mut self.repr {
            ShardRepr::Dac(cols) => {
                for &(port, msg) in batch {
                    cols.process(v, port, msg);
                }
            }
            ShardRepr::Dbac(cols) => {
                for &(port, msg) in batch {
                    cols.process(v, port, msg);
                }
            }
        }
    }
}

impl fmt::Debug for PlaneShard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.repr {
            ShardRepr::Dac(_) => "dac",
            ShardRepr::Dbac(_) => "dbac",
        };
        write!(f, "PlaneShard({kind}, base {})", self.base)
    }
}

/// Carves the first `at` elements off `*s` (for per-shard column
/// splitting — each call hands the caller an exclusive prefix and leaves
/// the tail for the remaining shards).
fn take_split<'a, T>(s: &mut &'a mut [T], at: usize) -> &'a mut [T] {
    let (head, rest) = std::mem::take(s).split_at_mut(at);
    *s = rest;
    head
}

/// Checks the [`AlgorithmPlane::fill_shards`] `bounds` contract against a
/// plane of `n` slots.
fn assert_shard_bounds(n: usize, bounds: &[usize], shards: usize) {
    assert_eq!(bounds.len(), shards + 1, "one bound per shard edge");
    assert_eq!(bounds[0], 0, "first shard starts at slot 0");
    assert_eq!(bounds[shards], n, "last shard ends at n");
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "bounds must ascend"
    );
}

/// [`Dac`](crate::Dac) in struct-of-arrays layout: one plane holds every
/// node's phase, value, tracked extrema, port bit row, and contribution
/// count as flat columns. See [`AlgorithmPlane`] for the equivalence
/// contract and [the module docs](self) for why.
#[derive(Debug, Clone)]
pub struct DacPlane {
    pend: u64,
    /// `dac_quorum() - 1`: foreign same-phase contributions needed to
    /// advance, hoisted so the hot loop compares `seen_count` directly.
    foreign_quorum: u32,
    /// Words per `ports_seen` row (`n.div_ceil(64)`).
    row_words: usize,
    phase: Vec<Phase>,
    value: Vec<Value>,
    vmin: Vec<Value>,
    vmax: Vec<Value>,
    /// `R_i` rows, one bitset row of `row_words` words per slot.
    ports_seen: Vec<u64>,
    /// Foreign same-phase contributions per slot (`|R_i| - 1`).
    seen_count: Vec<u32>,
    /// Decided outputs. **Not** consulted on the hot path: `output[v]` is
    /// `Some` iff `phase[v] >= pend` (every phase change runs the
    /// `try_advance` tail, which maintains the invariant), so deliveries
    /// test the phase they already loaded.
    output: Vec<Option<Value>>,
}

impl DacPlane {
    /// Creates the plane with one slot per input, terminating at the
    /// paper's `pend = ⌈log₂(1/ε)⌉`.
    pub fn new(params: Params, inputs: &[Value]) -> Self {
        DacPlane::with_pend(params, inputs, params.dac_pend())
    }

    /// Creates the plane with an explicit termination phase.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != params.n()`.
    pub fn with_pend(params: Params, inputs: &[Value], pend: u64) -> Self {
        let n = params.n();
        assert_eq!(inputs.len(), n, "one input per slot");
        let row_words = n.div_ceil(64);
        let mut plane = DacPlane {
            pend,
            foreign_quorum: (params.dac_quorum() - 1) as u32,
            row_words,
            phase: vec![Phase::ZERO; n],
            value: inputs.to_vec(),
            vmin: inputs.to_vec(),
            vmax: inputs.to_vec(),
            ports_seen: vec![0; n * row_words],
            seen_count: vec![0; n],
            output: vec![None; n],
        };
        let mut cols = plane.cols();
        for v in 0..n {
            cols.maybe_output(v);
        }
        plane
    }

    /// The termination phase in effect.
    pub fn pend(&self) -> u64 {
        self.pend
    }

    /// Borrows every column as a disjoint `&mut` slice. The engine's bulk
    /// calls split once and run the whole receiver walk on the views:
    /// `&mut` slices are provably non-aliasing, so the optimizer keeps
    /// loop-invariant pointers and the receiver's hot fields in registers
    /// instead of re-loading them after every store (one `Vec` store
    /// could otherwise alias every other column).
    #[inline]
    fn cols(&mut self) -> DacCols<'_> {
        DacCols {
            pend: self.pend,
            foreign_quorum: self.foreign_quorum,
            row_words: self.row_words,
            phase: &mut self.phase,
            value: &mut self.value,
            vmin: &mut self.vmin,
            vmax: &mut self.vmax,
            ports_seen: &mut self.ports_seen,
            seen_count: &mut self.seen_count,
            output: &mut self.output,
        }
    }
}

/// The disjoint column views of one [`DacPlane`] (see [`DacPlane::cols`]).
struct DacCols<'a> {
    pend: u64,
    foreign_quorum: u32,
    row_words: usize,
    phase: &'a mut [Phase],
    value: &'a mut [Value],
    vmin: &'a mut [Value],
    vmax: &'a mut [Value],
    ports_seen: &'a mut [u64],
    seen_count: &'a mut [u32],
    output: &'a mut [Option<Value>],
}

impl DacCols<'_> {
    /// Alg. 1 `RESET()` for slot `v`: clear its port row and collapse the
    /// extrema onto the current value.
    #[inline]
    fn reset(&mut self, v: usize) {
        let row = v * self.row_words;
        self.ports_seen[row..row + self.row_words].fill(0);
        self.seen_count[v] = 0;
        self.vmin[v] = self.value[v];
        self.vmax[v] = self.value[v];
    }

    #[inline]
    fn maybe_output(&mut self, v: usize) {
        if self.phase[v].as_u64() >= self.pend && self.output[v].is_none() {
            self.output[v] = Some(self.value[v]);
        }
    }

    /// One received message at slot `v` — the columnar mirror of
    /// `Dac::process` (Alg. 1 lines 5–15), with two flow changes that are
    /// behaviorally invisible: "decided" is read off the phase column
    /// (`phase >= pend ⇔ output set` — the `output` invariant), and
    /// `try_advance` is skipped when the message changed nothing (a
    /// drained quorum condition cannot become true without new state).
    #[inline(always)]
    fn process(&mut self, v: usize, port: Port, msg: Message) {
        let p = self.phase[v];
        if p.as_u64() >= self.pend {
            // Decided: keeps broadcasting, no longer updates.
            return;
        }
        let q = msg.phase();
        if q > p {
            // Jump: adopt the future state wholesale.
            self.value[v] = msg.value();
            self.phase[v] = q;
            self.reset(v);
        } else if q == p {
            let (w, b) = (port.index() / 64, port.index() % 64);
            let slot = &mut self.ports_seen[v * self.row_words + w];
            if *slot & (1 << b) != 0 {
                return; // duplicate port: nothing changed
            }
            *slot |= 1 << b;
            let seen = self.seen_count[v] + 1;
            self.seen_count[v] = seen;
            let mv = msg.value();
            if mv < self.vmin[v] {
                self.vmin[v] = mv;
            } else if mv > self.vmax[v] {
                self.vmax[v] = mv;
            }
            // Below quorum nothing can advance and the phase is still
            // short of pend — skip the call, keeping the per-message path
            // free of the out-of-line advance machinery.
            if seen < self.foreign_quorum {
                return;
            }
        } else {
            return; // stale: nothing changed
        }
        self.try_advance(v);
    }

    #[inline]
    fn try_advance(&mut self, v: usize) {
        while self.seen_count[v] >= self.foreign_quorum && self.phase[v].as_u64() < self.pend {
            self.value[v] = self.vmin[v].midpoint(self.vmax[v]);
            self.phase[v] = self.phase[v].next();
            self.reset(v);
        }
        self.maybe_output(v);
    }
}

impl AlgorithmPlane for DacPlane {
    fn n(&self) -> usize {
        self.phase.len()
    }

    fn phases(&self) -> &[Phase] {
        &self.phase
    }

    fn values(&self) -> &[Value] {
        &self.value
    }

    fn outputs(&self) -> &[Option<Value>] {
        &self.output
    }

    // audit: no-alloc
    fn deliver_from_sender(&mut self, msg: Message, receivers: &NodeSet, ports: &[Port]) {
        let mut cols = self.cols();
        for (wi, mut word) in receivers.iter_words() {
            let base = wi * 64;
            while word != 0 {
                let v = base + word.trailing_zeros() as usize;
                word &= word - 1;
                cols.process(v, ports[v], msg);
            }
        }
    }

    // audit: no-alloc
    fn receive(&mut self, receiver: usize, port: Port, batch: &[Message]) {
        let mut cols = self.cols();
        for &msg in batch {
            cols.process(receiver, port, msg);
        }
    }

    // audit: no-alloc
    fn receive_many(&mut self, receiver: usize, batch: &[(Port, Message)]) {
        let mut cols = self.cols();
        for &(port, msg) in batch {
            cols.process(receiver, port, msg);
        }
    }

    fn fill_shards<'a>(&'a mut self, bounds: &[usize], out: &mut [Option<PlaneShard<'a>>]) -> bool {
        assert_shard_bounds(self.phase.len(), bounds, out.len());
        let (pend, foreign_quorum, row_words) = (self.pend, self.foreign_quorum, self.row_words);
        let (mut phase, mut value) = (&mut self.phase[..], &mut self.value[..]);
        let (mut vmin, mut vmax) = (&mut self.vmin[..], &mut self.vmax[..]);
        let mut ports_seen = &mut self.ports_seen[..];
        let (mut seen_count, mut output) = (&mut self.seen_count[..], &mut self.output[..]);
        for (i, slot) in out.iter_mut().enumerate() {
            let len = bounds[i + 1] - bounds[i];
            *slot = Some(PlaneShard {
                base: bounds[i],
                repr: ShardRepr::Dac(DacCols {
                    pend,
                    foreign_quorum,
                    row_words,
                    phase: take_split(&mut phase, len),
                    value: take_split(&mut value, len),
                    vmin: take_split(&mut vmin, len),
                    vmax: take_split(&mut vmax, len),
                    ports_seen: take_split(&mut ports_seen, len * row_words),
                    seen_count: take_split(&mut seen_count, len),
                    output: take_split(&mut output, len),
                }),
            });
        }
        true
    }

    fn end_round(&mut self, executing: &NodeSet) {
        let mut cols = self.cols();
        executing.for_each(|id| cols.try_advance(id.index()));
    }

    fn reset_instance(&mut self, inputs: &[Value]) -> bool {
        let n = self.phase.len();
        assert_eq!(inputs.len(), n, "one input per slot");
        let mut cols = self.cols();
        for (v, input) in inputs.iter().enumerate() {
            cols.phase[v] = Phase::ZERO;
            cols.value[v] = *input;
            cols.output[v] = None;
            cols.reset(v);
            cols.maybe_output(v);
        }
        true
    }

    fn name(&self) -> &'static str {
        "dac"
    }
}

/// [`Dbac`](crate::Dbac) in struct-of-arrays layout: phase, value, port
/// bit rows, and the `R_low`/`R_high` trim lists as flat `f + 1`-wide
/// slabs. See [`AlgorithmPlane`] for the equivalence contract.
#[derive(Debug, Clone)]
pub struct DbacPlane {
    pend: u64,
    /// `dbac_quorum() - 1`, hoisted like [`DacPlane::foreign_quorum`].
    foreign_quorum: u32,
    row_words: usize,
    /// Trim-list capacity per slot (`f + 1`).
    cap: usize,
    phase: Vec<Phase>,
    value: Vec<Value>,
    ports_seen: Vec<u64>,
    seen_count: Vec<u32>,
    /// `R_low` slab: slot `v` owns `low[v*cap..v*cap + low_len[v]]`.
    low: Vec<Value>,
    low_len: Vec<u32>,
    /// `R_high` slab, same layout.
    high: Vec<Value>,
    high_len: Vec<u32>,
    /// Shared scratch for sorting piggybacked (Byzantine) batches —
    /// one suffices because batches are consumed delivery by delivery.
    sort_scratch: Vec<Message>,
    output: Vec<Option<Value>>,
}

impl DbacPlane {
    /// Creates the plane with one slot per input, terminating at the
    /// paper's Eq. (6) `pend`.
    pub fn new(params: Params, inputs: &[Value]) -> Self {
        DbacPlane::with_pend(params, inputs, params.dbac_pend())
    }

    /// Creates the plane with an explicit termination phase.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != params.n()`.
    pub fn with_pend(params: Params, inputs: &[Value], pend: u64) -> Self {
        let n = params.n();
        assert_eq!(inputs.len(), n, "one input per slot");
        let row_words = n.div_ceil(64);
        let cap = params.dbac_list_len();
        let mut plane = DbacPlane {
            pend,
            foreign_quorum: (params.dbac_quorum() - 1) as u32,
            row_words,
            cap,
            phase: vec![Phase::ZERO; n],
            value: inputs.to_vec(),
            ports_seen: vec![0; n * row_words],
            seen_count: vec![0; n],
            low: vec![Value::HALF; n * cap],
            low_len: vec![0; n],
            high: vec![Value::HALF; n * cap],
            high_len: vec![0; n],
            sort_scratch: Vec::new(),
            output: vec![None; n],
        };
        let mut cols = plane.cols();
        for v in 0..n {
            cols.reset(v);
            cols.maybe_output(v);
        }
        plane
    }

    /// The termination phase in effect.
    pub fn pend(&self) -> u64 {
        self.pend
    }

    /// Disjoint column views — same rationale as [`DacPlane::cols`].
    #[inline]
    fn cols(&mut self) -> DbacCols<'_> {
        DbacCols {
            pend: self.pend,
            foreign_quorum: self.foreign_quorum,
            row_words: self.row_words,
            cap: self.cap,
            phase: &mut self.phase,
            value: &mut self.value,
            ports_seen: &mut self.ports_seen,
            seen_count: &mut self.seen_count,
            low: &mut self.low,
            low_len: &mut self.low_len,
            high: &mut self.high,
            high_len: &mut self.high_len,
            output: &mut self.output,
        }
    }
}

/// The disjoint column views of one [`DbacPlane`] (see
/// [`DbacPlane::cols`]).
struct DbacCols<'a> {
    pend: u64,
    foreign_quorum: u32,
    row_words: usize,
    cap: usize,
    phase: &'a mut [Phase],
    value: &'a mut [Value],
    ports_seen: &'a mut [u64],
    seen_count: &'a mut [u32],
    low: &'a mut [Value],
    low_len: &'a mut [u32],
    high: &'a mut [Value],
    high_len: &'a mut [u32],
    output: &'a mut [Option<Value>],
}

impl DbacCols<'_> {
    /// Alg. 2 `RESET()` + self-store for slot `v` (mirrors
    /// `Dbac::reset`).
    #[inline]
    fn reset(&mut self, v: usize) {
        let row = v * self.row_words;
        self.ports_seen[row..row + self.row_words].fill(0);
        self.seen_count[v] = 0;
        if self.cap == 1 {
            // Both degenerate lists hold exactly the own value — the
            // state `store`'s fast path relies on.
            self.low[v] = self.value[v];
            self.high[v] = self.value[v];
            self.low_len[v] = 1;
            self.high_len[v] = 1;
        } else {
            self.low_len[v] = 0;
            self.high_len[v] = 0;
            self.store(v, self.value[v]);
        }
    }

    /// Alg. 2 `STORE(v_j)` for slot `v` — byte-for-byte the trait
    /// version's push-or-replace logic, including `max_index` /
    /// `min_index` tie-breaking.
    #[inline]
    fn store(&mut self, v: usize, val: Value) {
        if self.cap == 1 {
            // f = 0: the trim lists degenerate to a running min and max.
            // After every reset both hold exactly the own value (length
            // 1), so the general push-or-replace below reduces to this.
            if val < self.low[v] {
                self.low[v] = val;
            }
            if val > self.high[v] {
                self.high[v] = val;
            }
            return;
        }
        let base = v * self.cap;
        let llen = self.low_len[v] as usize;
        if llen < self.cap {
            self.low[base + llen] = val;
            self.low_len[v] += 1;
        } else if let Some(max_idx) = max_index(&self.low[base..base + llen]) {
            if val < self.low[base + max_idx] {
                self.low[base + max_idx] = val;
            }
        }
        let hlen = self.high_len[v] as usize;
        if hlen < self.cap {
            self.high[base + hlen] = val;
            self.high_len[v] += 1;
        } else if let Some(min_idx) = min_index(&self.high[base..base + hlen]) {
            if val > self.high[base + min_idx] {
                self.high[base + min_idx] = val;
            }
        }
    }

    #[inline]
    fn maybe_output(&mut self, v: usize) {
        if self.phase[v].as_u64() >= self.pend && self.output[v].is_none() {
            self.output[v] = Some(self.value[v]);
        }
    }

    /// One received message at slot `v` — the columnar mirror of
    /// `Dbac::process` (Alg. 2 lines 5–11), with the same
    /// behavior-preserving flow changes as [`DacCols::process`]:
    /// decided-by-phase and no `try_advance` after a no-op message.
    #[inline(always)]
    fn process(&mut self, v: usize, port: Port, msg: Message) {
        let p = self.phase[v];
        if p.as_u64() >= self.pend {
            return;
        }
        if msg.phase() >= p {
            let (w, b) = (port.index() / 64, port.index() % 64);
            let slot = &mut self.ports_seen[v * self.row_words + w];
            if *slot & (1 << b) == 0 {
                *slot |= 1 << b;
                let seen = self.seen_count[v] + 1;
                self.seen_count[v] = seen;
                if self.cap == 1 {
                    // The degenerate f = 0 trim, kept inline — `store`'s
                    // general path would drag its push-or-replace code
                    // (and a function call) into every counted message.
                    let val = msg.value();
                    if val < self.low[v] {
                        self.low[v] = val;
                    }
                    if val > self.high[v] {
                        self.high[v] = val;
                    }
                } else {
                    self.store(v, msg.value());
                }
                // Below quorum nothing can advance (same early-out as
                // `DacCols::process`).
                if seen >= self.foreign_quorum {
                    self.try_advance(v);
                }
            }
        }
    }

    // audit: no-alloc-fn
    #[inline]
    fn try_advance(&mut self, v: usize) {
        while self.seen_count[v] >= self.foreign_quorum && self.phase[v].as_u64() < self.pend {
            let (lo, hi) = if self.cap == 1 {
                (self.low[v], self.high[v])
            } else {
                let base = v * self.cap;
                let (Some(&lo), Some(&hi)) = (
                    self.low[base..base + self.low_len[v] as usize].iter().max(),
                    self.high[base..base + self.high_len[v] as usize]
                        .iter()
                        .min(),
                ) else {
                    debug_assert!(false, "low/high lists are never empty at quorum");
                    return;
                };
                (lo, hi)
            };
            self.value[v] = lo.midpoint(hi);
            self.phase[v] = self.phase[v].next();
            self.reset(v);
        }
        self.maybe_output(v);
    }
}

impl AlgorithmPlane for DbacPlane {
    fn n(&self) -> usize {
        self.phase.len()
    }

    fn phases(&self) -> &[Phase] {
        &self.phase
    }

    fn values(&self) -> &[Value] {
        &self.value
    }

    fn outputs(&self) -> &[Option<Value>] {
        &self.output
    }

    // audit: no-alloc
    fn deliver_from_sender(&mut self, msg: Message, receivers: &NodeSet, ports: &[Port]) {
        let mut cols = self.cols();
        for (wi, mut word) in receivers.iter_words() {
            let base = wi * 64;
            while word != 0 {
                let v = base + word.trailing_zeros() as usize;
                word &= word - 1;
                cols.process(v, ports[v], msg);
            }
        }
    }

    // audit: no-alloc
    fn receive(&mut self, receiver: usize, port: Port, batch: &[Message]) {
        if batch.len() == 1 {
            self.cols().process(receiver, port, batch[0]);
        } else {
            // Multi-message (Byzantine) batches are processed in ascending
            // phase order — the same resolution as `Dbac::receive`, with
            // one plane-wide scratch instead of one per node.
            let mut sorted = std::mem::take(&mut self.sort_scratch);
            sorted.clear();
            sorted.extend_from_slice(batch);
            sorted.sort();
            let mut cols = self.cols();
            for &msg in &sorted {
                cols.process(receiver, port, msg);
            }
            self.sort_scratch = sorted;
        }
    }

    // audit: no-alloc
    fn receive_many(&mut self, receiver: usize, batch: &[(Port, Message)]) {
        // Every entry is one honest single-message link (the sparse path
        // never routes Byzantine fabrications here), so no per-batch
        // phase sorting is needed — this is `receive` with a 1-message
        // batch per entry, columns split once.
        let mut cols = self.cols();
        for &(port, msg) in batch {
            cols.process(receiver, port, msg);
        }
    }

    fn fill_shards<'a>(&'a mut self, bounds: &[usize], out: &mut [Option<PlaneShard<'a>>]) -> bool {
        assert_shard_bounds(self.phase.len(), bounds, out.len());
        let (pend, foreign_quorum) = (self.pend, self.foreign_quorum);
        let (row_words, cap) = (self.row_words, self.cap);
        let (mut phase, mut value) = (&mut self.phase[..], &mut self.value[..]);
        let mut ports_seen = &mut self.ports_seen[..];
        let mut seen_count = &mut self.seen_count[..];
        let (mut low, mut low_len) = (&mut self.low[..], &mut self.low_len[..]);
        let (mut high, mut high_len) = (&mut self.high[..], &mut self.high_len[..]);
        let mut output = &mut self.output[..];
        for (i, slot) in out.iter_mut().enumerate() {
            let len = bounds[i + 1] - bounds[i];
            *slot = Some(PlaneShard {
                base: bounds[i],
                repr: ShardRepr::Dbac(DbacCols {
                    pend,
                    foreign_quorum,
                    row_words,
                    cap,
                    phase: take_split(&mut phase, len),
                    value: take_split(&mut value, len),
                    ports_seen: take_split(&mut ports_seen, len * row_words),
                    seen_count: take_split(&mut seen_count, len),
                    low: take_split(&mut low, len * cap),
                    low_len: take_split(&mut low_len, len),
                    high: take_split(&mut high, len * cap),
                    high_len: take_split(&mut high_len, len),
                    output: take_split(&mut output, len),
                }),
            });
        }
        true
    }

    fn end_round(&mut self, executing: &NodeSet) {
        let mut cols = self.cols();
        executing.for_each(|id| cols.try_advance(id.index()));
    }

    fn reset_instance(&mut self, inputs: &[Value]) -> bool {
        let n = self.phase.len();
        assert_eq!(inputs.len(), n, "one input per slot");
        self.sort_scratch.clear();
        let mut cols = self.cols();
        for (v, input) in inputs.iter().enumerate() {
            cols.phase[v] = Phase::ZERO;
            cols.value[v] = *input;
            cols.output[v] = None;
            cols.reset(v);
            cols.maybe_output(v);
        }
        true
    }

    fn name(&self) -> &'static str {
        "dbac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Dac, Dbac};
    use adn_types::NodeId;

    fn val(v: f64) -> Value {
        Value::new(v).unwrap()
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(val(v), Phase::new(p))
    }

    /// Drives slot 0 of a DAC plane and a standalone `Dac` through the
    /// same delivery script and asserts identical observable state.
    fn assert_dac_lockstep(params: Params, pend: u64, input: f64, script: &[(usize, Message)]) {
        let n = params.n();
        let mut inputs = vec![Value::HALF; n];
        inputs[0] = val(input);
        let mut plane = DacPlane::with_pend(params, &inputs, pend);
        let mut node = Dac::with_pend(params, val(input), pend);
        for &(port, m) in script {
            plane.receive(0, Port::new(port), &[m]);
            node.receive(Port::new(port), &[m]);
            assert_eq!(plane.phases()[0], node.phase(), "phase after {m}");
            assert_eq!(plane.values()[0], node.current_value(), "value after {m}");
            assert_eq!(plane.outputs()[0], node.output(), "output after {m}");
        }
    }

    #[test]
    fn dac_plane_mirrors_dac_on_quorum_script() {
        let params = Params::new(5, 1, 0.25).unwrap();
        assert_dac_lockstep(
            params,
            2,
            0.0,
            &[
                (1, msg(1.0, 0)),
                (2, msg(0.5, 0)), // quorum: advance with midpoint
                (1, msg(0.2, 1)),
                (3, msg(0.8, 1)), // advance again -> pend -> output
                (2, msg(0.1, 5)), // decided: frozen
            ],
        );
    }

    #[test]
    fn dac_plane_same_round_jump_then_same_phase() {
        // The sender-major walk may jump a receiver mid-round and then
        // feed it same-phase values from *later* senders of the same
        // round: the jump must reset the port row so those count anew.
        let params = Params::new(5, 1, 0.25).unwrap();
        assert_dac_lockstep(
            params,
            4,
            0.0,
            &[
                (1, msg(0.9, 0)), // same-phase contribution, port 1
                (2, msg(0.7, 2)), // jump to phase 2 (resets port row)
                (1, msg(0.3, 2)), // port 1 contributes AGAIN post-jump
                (3, msg(0.5, 2)), // completes the phase-2 quorum
                (4, msg(0.4, 2)), // stale (receiver is at phase 3 now)
            ],
        );
        // And the concrete post-state: quorum of {0.7 (own), 0.3, 0.5}
        // -> midpoint(0.3, 0.7) = 0.5 at phase 3.
        let inputs = [val(0.0), Value::HALF, Value::HALF, Value::HALF, Value::HALF];
        let mut plane = DacPlane::with_pend(params, &inputs, 4);
        for (port, m) in [
            (1, msg(0.9, 0)),
            (2, msg(0.7, 2)),
            (1, msg(0.3, 2)),
            (3, msg(0.5, 2)),
        ] {
            plane.receive(0, Port::new(port), &[m]);
        }
        assert_eq!(plane.phases()[0], Phase::new(3));
        assert_eq!(plane.values()[0], Value::HALF);
    }

    #[test]
    fn dbac_plane_mirrors_dbac_including_trim_ties() {
        let params = Params::new(6, 1, 0.1).unwrap();
        let n = params.n();
        let mut inputs = vec![Value::HALF; n];
        inputs[0] = val(0.5);
        let mut plane = DbacPlane::with_pend(params, &inputs, 3);
        let mut node = Dbac::with_pend(params, val(0.5), 3);
        // Ties (repeated 0.2) exercise the max_index/min_index
        // tie-breaking that the plane must replicate exactly.
        let script = [
            (1, msg(0.2, 0)),
            (2, msg(0.2, 0)),
            (3, msg(0.2, 3)), // future phase accepted, no jump
            (4, msg(0.9, 0)), // quorum of 5 -> advance
            (1, msg(0.4, 1)),
        ];
        for (port, m) in script {
            plane.receive(0, Port::new(port), &[m]);
            node.receive(Port::new(port), &[m]);
            assert_eq!(plane.phases()[0], node.phase(), "phase after {m}");
            assert_eq!(plane.values()[0], node.current_value(), "value after {m}");
            assert_eq!(plane.outputs()[0], node.output(), "output after {m}");
        }
    }

    #[test]
    fn dbac_plane_sorts_multi_message_batches() {
        let params = Params::new(6, 1, 0.1).unwrap();
        let inputs = vec![Value::HALF; 6];
        let mut plane = DbacPlane::with_pend(params, &inputs, 10);
        let mut node = Dbac::with_pend(params, Value::HALF, 10);
        let batch = [msg(0.9, 2), msg(0.1, 0)];
        plane.receive(0, Port::new(1), &batch);
        node.receive(Port::new(1), &batch);
        assert_eq!(plane.values()[0], node.current_value());
        assert_eq!(plane.phases()[0], node.phase());
    }

    #[test]
    fn plane_bulk_delivery_visits_receivers_ascending() {
        let params = Params::fault_free(5, 0.25).unwrap();
        let inputs: Vec<Value> = (0..5).map(|i| val(i as f64 / 10.0)).collect();
        let mut plane = DacPlane::new(params, &inputs);
        let receivers = NodeSet::from_ids(5, [NodeId::new(1), NodeId::new(3)]);
        let ports: Vec<Port> = (0..5).map(Port::new).collect();
        plane.deliver_from_sender(msg(0.9, 0), &receivers, &ports);
        // Only the addressed slots saw the message.
        assert_eq!(plane.values()[0], val(0.0));
        assert_eq!(plane.phases()[2], Phase::ZERO);
        // n = 5 quorum is 3: one foreign value is not enough to advance.
        for v in [1usize, 3] {
            assert_eq!(plane.seen_count[v], 1, "slot {v}");
            assert_eq!(plane.vmax[v], val(0.9), "slot {v}");
        }
    }

    #[test]
    fn encode_wire_defaults_to_identity() {
        let params = Params::fault_free(3, 0.25).unwrap();
        let dac = DacPlane::new(params, &[Value::HALF; 3]);
        let dbac = DbacPlane::with_pend(Params::new(6, 1, 0.1).unwrap(), &[Value::HALF; 6], 3);
        let m = msg(0.3, 2);
        assert_eq!(dac.encode_wire(m), m);
        assert_eq!(dbac.encode_wire(m), m);
    }

    #[test]
    fn columns_snapshot_initial_state() {
        let params = Params::fault_free(3, 0.25).unwrap();
        let inputs = [val(0.1), val(0.2), val(0.3)];
        let plane = DacPlane::new(params, &inputs);
        assert_eq!(plane.values(), &inputs);
        assert!(plane.phases().iter().all(|&p| p == Phase::ZERO));
        assert_eq!(plane.n(), 3);
        assert_eq!(plane.name(), "dac");
    }

    #[test]
    fn receive_many_matches_per_link_receives() {
        let params = Params::new(6, 1, 0.1).unwrap();
        let inputs = vec![Value::HALF; 6];
        let script = [
            (Port::new(1), msg(0.2, 0)),
            (Port::new(2), msg(0.9, 0)),
            (Port::new(3), msg(0.4, 1)),
            (Port::new(4), msg(0.6, 0)),
        ];
        let mut bulk_dac = DacPlane::with_pend(params, &inputs, 3);
        let mut link_dac = DacPlane::with_pend(params, &inputs, 3);
        bulk_dac.receive_many(2, &script);
        for &(port, m) in &script {
            link_dac.receive(2, port, &[m]);
        }
        assert_eq!(bulk_dac.phases(), link_dac.phases());
        assert_eq!(bulk_dac.values(), link_dac.values());
        let mut bulk_dbac = DbacPlane::with_pend(params, &inputs, 3);
        let mut link_dbac = DbacPlane::with_pend(params, &inputs, 3);
        bulk_dbac.receive_many(2, &script);
        for &(port, m) in &script {
            link_dbac.receive(2, port, &[m]);
        }
        assert_eq!(bulk_dbac.phases(), link_dbac.phases());
        assert_eq!(bulk_dbac.values(), link_dbac.values());
    }

    #[test]
    fn shards_mirror_whole_plane_delivery() {
        let params = Params::new(7, 1, 0.1).unwrap();
        let inputs: Vec<Value> = (0..7).map(|i| val(i as f64 / 10.0)).collect();
        let deliver = |shard: &mut PlaneShard<'_>, lo: usize, hi: usize| {
            for v in lo..hi {
                let batch = [
                    (Port::new(1), msg(0.8, 0)),
                    (Port::new(2), msg(0.1, 0)),
                    (Port::new(3), msg(0.5, 0)),
                ];
                shard.receive_many(v, &batch);
            }
        };
        let bounds = [0usize, 3, 7];
        let mut whole = DacPlane::with_pend(params, &inputs, 4);
        let mut sharded = DacPlane::with_pend(params, &inputs, 4);
        {
            let mut shards: [Option<PlaneShard<'_>>; 2] = [None, None];
            assert!(sharded.fill_shards(&bounds, &mut shards));
            for (i, shard) in shards.iter_mut().enumerate() {
                let s = shard.as_mut().unwrap();
                assert_eq!(s.base(), bounds[i]);
                deliver(s, bounds[i], bounds[i + 1]);
            }
        }
        for v in 0..7 {
            whole.receive_many(
                v,
                &[
                    (Port::new(1), msg(0.8, 0)),
                    (Port::new(2), msg(0.1, 0)),
                    (Port::new(3), msg(0.5, 0)),
                ],
            );
        }
        assert_eq!(whole.phases(), sharded.phases());
        assert_eq!(whole.values(), sharded.values());
        assert_eq!(whole.outputs(), sharded.outputs());
        // Same drill for DBAC, whose trim slabs split at `len * cap`.
        let mut whole = DbacPlane::with_pend(params, &inputs, 4);
        let mut sharded = DbacPlane::with_pend(params, &inputs, 4);
        {
            let mut shards: [Option<PlaneShard<'_>>; 2] = [None, None];
            assert!(sharded.fill_shards(&bounds, &mut shards));
            for (i, shard) in shards.iter_mut().enumerate() {
                deliver(shard.as_mut().unwrap(), bounds[i], bounds[i + 1]);
            }
        }
        for v in 0..7 {
            whole.receive_many(
                v,
                &[
                    (Port::new(1), msg(0.8, 0)),
                    (Port::new(2), msg(0.1, 0)),
                    (Port::new(3), msg(0.5, 0)),
                ],
            );
        }
        assert_eq!(whole.phases(), sharded.phases());
        assert_eq!(whole.values(), sharded.values());
    }

    #[test]
    fn reset_instance_is_observationally_fresh() {
        let params = Params::new(6, 1, 0.1).unwrap();
        let dirty_script = [
            (Port::new(1), msg(0.2, 0)),
            (Port::new(2), msg(0.9, 1)),
            (Port::new(3), msg(0.4, 0)),
        ];
        let follow_script = [
            (Port::new(2), msg(0.7, 0)),
            (Port::new(4), msg(0.3, 0)),
            (Port::new(1), msg(0.6, 1)),
        ];
        let old_inputs = vec![Value::HALF; 6];
        let new_inputs: Vec<Value> = (0..6).map(|i| val(i as f64 / 10.0)).collect();
        // A used-then-reset plane must behave exactly like a fresh one
        // under any follow-up script — for DAC and DBAC alike.
        let mut used_dac = DacPlane::with_pend(params, &old_inputs, 3);
        for v in 0..6 {
            used_dac.receive_many(v, &dirty_script);
        }
        assert!(used_dac.reset_instance(&new_inputs));
        let mut fresh_dac = DacPlane::with_pend(params, &new_inputs, 3);
        for v in 0..6 {
            used_dac.receive_many(v, &follow_script);
            fresh_dac.receive_many(v, &follow_script);
        }
        assert_eq!(used_dac.phases(), fresh_dac.phases());
        assert_eq!(used_dac.values(), fresh_dac.values());
        assert_eq!(used_dac.outputs(), fresh_dac.outputs());
        let mut used_dbac = DbacPlane::with_pend(params, &old_inputs, 3);
        for v in 0..6 {
            used_dbac.receive_many(v, &dirty_script);
        }
        assert!(used_dbac.reset_instance(&new_inputs));
        let mut fresh_dbac = DbacPlane::with_pend(params, &new_inputs, 3);
        for v in 0..6 {
            used_dbac.receive_many(v, &follow_script);
            fresh_dbac.receive_many(v, &follow_script);
        }
        assert_eq!(used_dbac.phases(), fresh_dbac.phases());
        assert_eq!(used_dbac.values(), fresh_dbac.values());
        assert_eq!(used_dbac.outputs(), fresh_dbac.outputs());
    }

    #[test]
    fn pend_zero_outputs_immediately() {
        let params = Params::fault_free(3, 1.0).unwrap(); // pend = 0
        let inputs = [val(0.1), val(0.2), val(0.3)];
        let plane = DacPlane::new(params, &inputs);
        assert!(plane.outputs().iter().all(Option::is_some));
        let dbac_params = Params::new(6, 1, 0.1).unwrap();
        let plane = DbacPlane::with_pend(dbac_params, &[Value::HALF; 6], 0);
        assert!(plane.outputs().iter().all(Option::is_some));
        assert_eq!(plane.pend(), 0);
    }
}
