use std::collections::VecDeque;

use adn_types::{Batch, Message, Params, Phase, Port, Value};

use crate::Algorithm;

/// The §VII "simulate the reliable-channel algorithm by piggybacking
/// history" construction, with a *bounded* history of `k` past states.
///
/// `FullExchange` runs the classic same-phase iterated algorithm of Dolev
/// et al. \[13\]: wait for `n − f` values **of your own phase** (self
/// included), trim the `f` lowest and `f` highest, move to the midpoint of
/// the rest — guaranteed convergence rate **1/2 per phase**, strictly
/// better than DBAC's worst-case `1 − 2⁻ⁿ`.
///
/// In a dynamic network the same-phase requirement is fatal for plain BAC
/// (senders that advanced stop transmitting your phase — §II-D). The fix
/// the paper sketches: every broadcast piggybacks the sender's last `k`
/// phase states, so a receiver that is at most `k` phases behind still
/// hears its own phase. The cost is `(1 + k) × 128` bits per link per
/// round; `k = 0` degenerates to the blocking [`Bac`](crate::baseline::Bac)
/// behavior, and `k` large enough to cover the execution's phase skew
/// restores liveness *and* the rate-1/2 guarantee. Experiment E13 sweeps
/// `k` to exhibit the trade-off.
///
/// # Example
///
/// ```
/// use adn_core::{Algorithm, FullExchange};
/// use adn_types::{Params, Value};
///
/// let params = Params::new(9, 1, 0.1)?;
/// let mut node = FullExchange::new(params, Value::HALF, 2);
/// assert_eq!(node.broadcast().len(), 1); // no history yet
/// assert_eq!(node.name(), "full-exchange");
/// # Ok::<(), adn_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct FullExchange {
    params: Params,
    pend: u64,
    history_len: usize,
    value: Value,
    phase: Phase,
    ports_seen: Vec<bool>,
    /// Same-phase values collected this phase (own value included).
    collected: Vec<Value>,
    /// Most recent first: the node's state in each completed phase.
    history: VecDeque<Message>,
    output: Option<Value>,
}

impl FullExchange {
    /// Creates a node piggybacking up to `k` past states. Terminates at
    /// the rate-1/2 phase count `⌈log₂(1/ε)⌉` (same as DAC — that is the
    /// point of the construction).
    pub fn new(params: Params, input: Value, k: usize) -> Self {
        FullExchange::with_pend(params, input, k, params.dac_pend())
    }

    /// Creates a node with an explicit termination phase.
    pub fn with_pend(params: Params, input: Value, k: usize, pend: u64) -> Self {
        FullExchange {
            params,
            pend,
            history_len: k,
            value: input,
            phase: Phase::ZERO,
            ports_seen: vec![false; params.n()],
            collected: vec![input],
            history: VecDeque::with_capacity(k),
            output: if pend == 0 { Some(input) } else { None },
        }
    }

    /// The history bound `k`.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Same-phase values collected so far this phase (own included).
    pub fn collected_count(&self) -> usize {
        self.collected.len()
    }
}

impl Algorithm for FullExchange {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, self.phase));
        out.extend(self.history.iter().copied());
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        // One contribution per port per phase; the contribution must be
        // the sender's value *at this node's phase*, current or
        // piggybacked.
        if !self.ports_seen[port.index()] {
            if let Some(msg) = batch.iter().find(|m| m.phase() == self.phase) {
                self.ports_seen[port.index()] = true;
                self.collected.push(msg.value());
            }
        }
        let quorum = self.params.n() - self.params.f();
        if self.collected.len() >= quorum {
            // Only the extremes of the trimmed middle matter: two O(len)
            // selections replace the full sort, and the collection buffer
            // is recycled in place — phase transitions allocate nothing.
            let f = self.params.f();
            let len = self.collected.len();
            assert!(
                len > 2 * f,
                "trimming {f} from each side of {len} values leaves nothing: \
                 the construction requires n >= 3f + 1"
            );
            let lo = *self.collected.select_nth_unstable(f).1;
            let hi = *self.collected.select_nth_unstable(len - 1 - f).1;
            let new_value = lo.midpoint(hi);
            // Archive the completed phase's state for retransmission.
            if self.history_len > 0 {
                self.history
                    .push_front(Message::new(self.value, self.phase));
                self.history.truncate(self.history_len);
            }
            self.value = new_value;
            self.phase = self.phase.next();
            self.ports_seen.fill(false);
            self.collected.clear();
            self.collected.push(self.value);
            if self.phase.as_u64() >= self.pend {
                self.output = Some(self.value);
            }
        }
    }

    fn end_round(&mut self) {}

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "full-exchange"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n = 5, f = 1: quorum n - f = 4.
    fn params() -> Params {
        Params::new(5, 1, 0.25).unwrap() // pend = 2
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(Value::new(v).unwrap(), Phase::new(p))
    }

    fn val(v: f64) -> Value {
        Value::new(v).unwrap()
    }

    #[test]
    fn same_phase_quorum_advances_with_trimmed_midpoint() {
        let mut node = FullExchange::new(params(), val(0.0), 2);
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        node.receive(Port::new(2), &[msg(0.4, 0)]);
        assert_eq!(node.phase(), Phase::ZERO);
        node.receive(Port::new(3), &[msg(0.6, 0)]);
        // Collected {0, 1, 0.4, 0.6}; trim 1 each side -> {0.4, 0.6} -> 0.5.
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.current_value(), Value::HALF);
    }

    #[test]
    fn future_phase_without_history_is_useless() {
        let mut node = FullExchange::new(params(), val(0.0), 2);
        node.receive(Port::new(1), &[msg(0.5, 3)]);
        assert_eq!(node.collected_count(), 1, "no same-phase value, no credit");
        assert!(
            !node.ports_seen[1],
            "port stays available for a later resend"
        );
    }

    #[test]
    fn piggybacked_history_provides_my_phase() {
        let mut node = FullExchange::new(params(), val(0.0), 2);
        // A sender two phases ahead piggybacks phases 2 and our phase 0.
        node.receive(Port::new(1), &[msg(0.9, 2), msg(0.8, 1), msg(0.5, 0)]);
        assert_eq!(node.collected_count(), 2);
    }

    #[test]
    fn broadcast_includes_archived_phases() {
        let mut node = FullExchange::with_pend(params(), val(0.0), 2, 10);
        for p in 1..=3 {
            node.receive(Port::new(p), &[msg(0.0, 0)]);
        }
        assert_eq!(node.phase(), Phase::new(1));
        let batch = node.broadcast();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].phase(), Phase::new(1));
        assert_eq!(batch[1].phase(), Phase::ZERO);
        assert_eq!(batch[1].value(), val(0.0));
    }

    #[test]
    fn history_is_bounded_by_k() {
        let mut node = FullExchange::with_pend(params(), val(0.5), 1, 100);
        for _ in 0..3 {
            for p in 1..=3 {
                node.receive(Port::new(p), &[msg(0.5, node.phase().as_u64())]);
            }
        }
        assert_eq!(node.phase(), Phase::new(3));
        assert_eq!(node.broadcast().len(), 2, "only k = 1 archived state");
    }

    #[test]
    fn k_zero_never_retransmits() {
        let mut node = FullExchange::with_pend(params(), val(0.5), 0, 100);
        for p in 1..=3 {
            node.receive(Port::new(p), &[msg(0.5, 0)]);
        }
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.broadcast().len(), 1);
    }

    #[test]
    fn outputs_at_pend_with_rate_half_count() {
        // eps = 0.25 -> pend = 2, like DAC.
        let mut node = FullExchange::new(params(), val(0.0), 2);
        assert_eq!(node.pend_phases(), 2);
        for round in 0..2u64 {
            for p in 1..=3 {
                node.receive(Port::new(p), &[msg(0.5, round)]);
            }
        }
        assert!(node.output().is_some());
    }

    impl FullExchange {
        fn pend_phases(&self) -> u64 {
            self.pend
        }
    }

    #[test]
    fn duplicate_port_one_credit_per_phase() {
        let mut node = FullExchange::new(params(), val(0.0), 2);
        node.receive(Port::new(1), &[msg(0.3, 0)]);
        node.receive(Port::new(1), &[msg(0.4, 0)]);
        assert_eq!(node.collected_count(), 2);
    }
}
