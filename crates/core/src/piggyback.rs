use std::collections::VecDeque;

use adn_types::{Batch, Message, Params, Phase, Port, Value};

use crate::{Algorithm, Dbac};

/// DBAC with bounded history piggybacking — the §VII bandwidth vs.
/// convergence-rate trade-off.
///
/// Each broadcast carries the node's current state **plus its states from
/// up to `k` previous phases**. A receiver that fell behind can then pick
/// up the sender's *same-phase* value instead of a future-phase one (the
/// inner [`Dbac`] processes batches in ascending phase order), which makes
/// updates look more like the reliable-channel algorithm of Dolev et
/// al. and pushes the measured contraction toward the crash-model 1/2.
///
/// Cost: `(1 + k) × 128` bits per link per round instead of `128`
/// (accounted by `adn-net`'s `Traffic` meter). With `k = 0` this is
/// exactly [`Dbac`]. With unbounded `k` it approaches the full-information
/// simulation the paper mentions for unlimited bandwidth.
///
/// # Example
///
/// ```
/// use adn_core::{Algorithm, DbacPiggyback};
/// use adn_types::{Params, Value};
///
/// let params = Params::new(6, 1, 0.1)?;
/// let mut node = DbacPiggyback::new(params, Value::HALF, 3);
/// assert_eq!(node.broadcast().len(), 1); // no history yet in phase 0
/// # Ok::<(), adn_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DbacPiggyback {
    inner: Dbac,
    history_len: usize,
    /// Most recent first: the node's state in each completed phase.
    history: VecDeque<Message>,
}

impl DbacPiggyback {
    /// Creates a node that piggybacks up to `history_len` past states,
    /// terminating at the paper's Eq. (6) phase.
    pub fn new(params: Params, input: Value, history_len: usize) -> Self {
        DbacPiggyback {
            inner: Dbac::new(params, input),
            history_len,
            history: VecDeque::with_capacity(history_len),
        }
    }

    /// Creates a node with an explicit termination phase.
    pub fn with_pend(params: Params, input: Value, history_len: usize, pend: u64) -> Self {
        DbacPiggyback {
            inner: Dbac::with_pend(params, input, pend),
            history_len,
            history: VecDeque::with_capacity(history_len),
        }
    }

    /// The history bound `k`.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Number of past states currently buffered.
    pub fn buffered(&self) -> usize {
        self.history.len()
    }

    /// Records phase transitions of the inner node so the pre-transition
    /// state lands in the history buffer.
    fn track<R>(&mut self, f: impl FnOnce(&mut Dbac) -> R) -> R {
        let before_phase = self.inner.phase();
        let before_value = self.inner.current_value();
        let r = f(&mut self.inner);
        if self.inner.phase() > before_phase && self.history_len > 0 {
            self.history
                .push_front(Message::new(before_value, before_phase));
            self.history.truncate(self.history_len);
        }
        r
    }
}

impl Algorithm for DbacPiggyback {
    fn broadcast_into(&mut self, out: &mut Batch) {
        self.inner.broadcast_into(out);
        out.extend(self.history.iter().copied());
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        // A DBAC phase transition consumes the whole quorum, so a single
        // batch can cause at most one transition; track() captures it.
        self.track(|inner| inner.receive(port, batch));
    }

    fn end_round(&mut self) {
        self.track(|inner| inner.end_round());
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }

    fn phase(&self) -> Phase {
        self.inner.phase()
    }

    fn current_value(&self) -> Value {
        self.inner.current_value()
    }

    fn name(&self) -> &'static str {
        "dbac-piggyback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n = 6, f = 1: quorum 5.
    fn params() -> Params {
        Params::new(6, 1, 0.1).unwrap()
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(Value::new(v).unwrap(), Phase::new(p))
    }

    fn advance_one_phase(node: &mut DbacPiggyback, v: f64) {
        for p in 1..=4 {
            node.receive(Port::new(p), &[msg(v, node.phase().as_u64())]);
        }
    }

    #[test]
    fn history_grows_with_phases() {
        let mut node = DbacPiggyback::with_pend(params(), Value::HALF, 3, 100);
        assert_eq!(node.buffered(), 0);
        advance_one_phase(&mut node, 0.5);
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.buffered(), 1);
        let batch = node.broadcast();
        assert_eq!(batch.len(), 2);
        // History entry is the phase-0 state.
        assert_eq!(batch[1].phase(), Phase::ZERO);
        assert_eq!(batch[1].value(), Value::HALF);
    }

    #[test]
    fn history_is_bounded() {
        let mut node = DbacPiggyback::with_pend(params(), Value::HALF, 2, 100);
        for _ in 0..5 {
            advance_one_phase(&mut node, 0.5);
        }
        assert_eq!(node.phase(), Phase::new(5));
        assert_eq!(node.buffered(), 2);
        let batch = node.broadcast();
        assert_eq!(batch.len(), 3);
        // Most recent history first: phases 4 and 3.
        assert_eq!(batch[1].phase(), Phase::new(4));
        assert_eq!(batch[2].phase(), Phase::new(3));
    }

    #[test]
    fn zero_history_is_plain_dbac() {
        let mut node = DbacPiggyback::with_pend(params(), Value::HALF, 0, 100);
        advance_one_phase(&mut node, 0.5);
        assert_eq!(node.broadcast().len(), 1);
        assert_eq!(node.buffered(), 0);
    }

    #[test]
    fn receiver_prefers_same_phase_value_from_batch() {
        // Sender is ahead (phase 1, value 0.9) but piggybacks its phase-0
        // state (0.1). A phase-0 receiver must store 0.1.
        let mut receiver = DbacPiggyback::with_pend(params(), Value::HALF, 2, 100);
        receiver.receive(Port::new(1), &[msg(0.9, 1), msg(0.1, 0)]);
        // Inner low list: {0.1, 0.5} — the same-phase 0.1 was stored.
        // (Accessing through the inner Dbac would need a getter; instead
        // check the externally visible effect: a later quorum update uses
        // 0.1 as the low end.)
        for p in 2..=4 {
            receiver.receive(Port::new(p), &[msg(0.5, 0)]);
        }
        assert_eq!(receiver.phase(), Phase::new(1));
        // low = {0.1, 0.5}, high = {0.5, 0.5}: update = (0.5+0.5)/2 = 0.5
        // if 0.9 had been stored high would be {0.5,0.9} -> update 0.5.
        // Distinguish via the value: with 0.1 stored, max(low) = 0.5,
        // min(high) = 0.5 -> 0.5. With 0.9: low {0.5,0.5}... both give 0.5.
        // The distinguishing check: receiver counted port 1 once only.
        assert_eq!(receiver.current_value(), Value::HALF);
    }

    #[test]
    fn output_propagates_from_inner() {
        let mut node = DbacPiggyback::with_pend(params(), Value::HALF, 2, 1);
        advance_one_phase(&mut node, 0.5);
        assert_eq!(node.output(), Some(Value::HALF));
        assert_eq!(node.name(), "dbac-piggyback");
    }
}
