use adn_types::{Batch, Message, Params, Phase, Port, Value};

use crate::Algorithm;

/// DBAC — Dynamic Byzantine Approximate Consensus (Algorithm 2 of the
/// paper).
///
/// Byzantine-tolerant approximate consensus for anonymous dynamic
/// networks. Correct when `n ≥ 5f + 1` and the realized delivery graph
/// satisfies `(T, ⌊(n+3f)/2⌋)`-dynaDegree. Converges with rate at most
/// `1 − 2⁻ⁿ` per phase (Thm. 7) and outputs at
/// `pend = ⌈ln ε / ln(1 − 2⁻ⁿ)⌉` (Eq. 6).
///
/// Differences from [`Dac`](crate::Dac) (§V):
///
/// * accepts messages from phase `≥` its own (but **never skips** phases —
///   a forged huge phase cannot drag the node forward);
/// * keeps only the `f + 1` lowest and `f + 1` highest accepted values
///   (`R_low` / `R_high`), so `f` Byzantine extremes can never *all*
///   survive the trim: the update `(max(R_low) + min(R_high)) / 2` is
///   bracketed by fault-free values;
/// * needs `⌊(n+3f)/2⌋ + 1` distinct contributors per phase.
///
/// ## Pseudocode ambiguities resolved (DESIGN.md §5.2–5.3)
///
/// The paper's `RESET()` keeps `R_i[i] = 1` but leaves `R_low`/`R_high`
/// empty, while the proof of Lemma 6 counts the node's own value among the
/// received ones. We store the node's own value into the lists at
/// initialization and at every reset — exactly what processing the
/// (always reliable) self-message would do. Similarly, `STORE`'s
/// `if |R_low| ≤ f + 1 then insert` is implemented as "keep the `f + 1`
/// smallest", matching the analysis (`max(R_low) = r_{f+1}`).
///
/// # Example
///
/// ```
/// use adn_core::{Algorithm, Dbac};
/// use adn_types::{Params, Value};
///
/// let params = Params::new(6, 1, 0.1)?;
/// let node = Dbac::new(params, Value::HALF);
/// assert_eq!(node.phase().as_u64(), 0);
/// // Eq. (6): pend = ceil(ln 0.1 / ln(1 - 2^-6)) = 147.
/// assert_eq!(node.pend(), 147);
/// # Ok::<(), adn_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dbac {
    params: Params,
    pend: u64,
    value: Value,
    phase: Phase,
    ports_seen: Vec<bool>,
    seen_count: usize,
    /// The `f + 1` smallest accepted values of the current phase.
    low: Vec<Value>,
    /// The `f + 1` largest accepted values of the current phase.
    high: Vec<Value>,
    /// Reusable scratch for sorting piggybacked batches in `receive`.
    sort_scratch: Vec<Message>,
    output: Option<Value>,
}

impl Dbac {
    /// Creates a node with the given input, terminating at the paper's
    /// `pend` from Eq. (6).
    pub fn new(params: Params, input: Value) -> Self {
        Dbac::with_pend(params, input, params.dbac_pend())
    }

    /// Creates a node with an explicit termination phase. Experiments use
    /// this because Eq. (6) is astronomically conservative for larger `n`
    /// (DESIGN.md §5.6).
    pub fn with_pend(params: Params, input: Value, pend: u64) -> Self {
        let mut node = Dbac {
            params,
            pend,
            value: input,
            phase: Phase::ZERO,
            ports_seen: vec![false; params.n()],
            seen_count: 0,
            low: Vec::with_capacity(params.dbac_list_len()),
            high: Vec::with_capacity(params.dbac_list_len()),
            sort_scratch: Vec::new(),
            output: None,
        };
        node.reset();
        node.maybe_output();
        node
    }

    /// The termination phase in effect.
    pub fn pend(&self) -> u64 {
        self.pend
    }

    /// Distinct contributors this phase, including the node itself.
    pub fn distinct_count(&self) -> usize {
        self.seen_count + 1
    }

    /// Current `R_low` (sorted ascending), exposed for invariant tests.
    pub fn low_list(&self) -> Vec<Value> {
        let mut l = self.low.clone();
        l.sort();
        l
    }

    /// Current `R_high` (sorted ascending), exposed for invariant tests.
    pub fn high_list(&self) -> Vec<Value> {
        let mut h = self.high.clone();
        h.sort();
        h
    }

    /// Alg. 2 `RESET()` + self-store (see type docs).
    fn reset(&mut self) {
        self.ports_seen.fill(false);
        self.seen_count = 0;
        self.low.clear();
        self.high.clear();
        self.store(self.value);
    }

    /// Alg. 2 `STORE(v_j)`: keep the `f+1` smallest in `low` and the
    /// `f+1` largest in `high`. A value may enter both lists (they overlap
    /// until more than `2(f+1)` values arrive).
    fn store(&mut self, v: Value) {
        let cap = self.params.dbac_list_len();
        if self.low.len() < cap {
            self.low.push(v);
        } else if let Some(max_idx) = max_index(&self.low) {
            if v < self.low[max_idx] {
                self.low[max_idx] = v;
            }
        }
        if self.high.len() < cap {
            self.high.push(v);
        } else if let Some(min_idx) = min_index(&self.high) {
            if v > self.high[min_idx] {
                self.high[min_idx] = v;
            }
        }
    }

    fn maybe_output(&mut self) {
        if self.output.is_none() && self.phase.as_u64() >= self.pend {
            self.output = Some(self.value);
        }
    }

    /// Processes one received message (Alg. 2 lines 5–11).
    fn process(&mut self, port: Port, msg: Message) {
        if self.output.is_some() {
            return;
        }
        if msg.phase() >= self.phase && !self.ports_seen[port.index()] {
            self.ports_seen[port.index()] = true;
            self.seen_count += 1;
            self.store(msg.value());
        }
        self.try_advance();
    }

    /// Advances while the quorum condition already holds (only possible
    /// for the degenerate `n = 1` system, whose quorum is the node
    /// itself).
    // audit: no-alloc-fn
    fn try_advance(&mut self) {
        while self.output.is_none() && self.distinct_count() >= self.params.dbac_quorum() {
            let (Some(&lo), Some(&hi)) = (self.low.iter().max(), self.high.iter().min()) else {
                debug_assert!(false, "low/high lists are never empty at quorum");
                return;
            };
            self.value = lo.midpoint(hi);
            self.phase = self.phase.next();
            self.reset();
            self.maybe_output();
        }
        self.maybe_output();
    }
}

/// Index of the maximum (the *last* one among ties — `max_by_key`'s
/// contract, which [`crate::plane::DbacPlane`] must reproduce exactly for
/// trait/plane equivalence).
pub(crate) fn max_index(vs: &[Value]) -> Option<usize> {
    vs.iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
}

/// Index of the minimum (the *first* one among ties — `min_by_key`'s
/// contract; see [`max_index`]).
pub(crate) fn min_index(vs: &[Value]) -> Option<usize> {
    vs.iter()
        .enumerate()
        .min_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
}

impl Algorithm for Dbac {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, self.phase));
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        // Piggybacked batches may contain several phases from one sender;
        // processing in ascending phase order makes the node store the
        // sender's oldest still-acceptable state, which is the same-phase
        // value whenever one is present (best for convergence, §VII).
        if batch.len() == 1 {
            self.process(port, batch[0]);
        } else {
            // Reuse the node-owned scratch so piggybacked deliveries stay
            // allocation-free once its capacity covers the history depth.
            let mut sorted = std::mem::take(&mut self.sort_scratch);
            sorted.clear();
            sorted.extend_from_slice(batch);
            sorted.sort();
            for &msg in &sorted {
                self.process(port, msg);
            }
            self.sort_scratch = sorted;
        }
    }

    fn end_round(&mut self) {
        self.try_advance();
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn reset_instance(&mut self, input: Value) -> bool {
        self.value = input;
        self.phase = Phase::ZERO;
        self.output = None;
        self.sort_scratch.clear();
        self.reset();
        self.maybe_output();
        true
    }

    fn name(&self) -> &'static str {
        "dbac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n = 6, f = 1: quorum floor(9/2)+1 = 5, lists of 2.
    fn params() -> Params {
        Params::new(6, 1, 0.1).unwrap()
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(Value::new(v).unwrap(), Phase::new(p))
    }

    fn val(v: f64) -> Value {
        Value::new(v).unwrap()
    }

    #[test]
    fn initial_lists_hold_own_value() {
        let node = Dbac::new(params(), val(0.4));
        assert_eq!(node.low_list(), vec![val(0.4)]);
        assert_eq!(node.high_list(), vec![val(0.4)]);
        assert_eq!(node.distinct_count(), 1);
    }

    #[test]
    fn quorum_with_trimmed_update() {
        // Quorum 5 = self + 4 foreign. Own value 0.5; foreign 0.0, 0.1,
        // 0.9, 1.0. Lists of size f+1 = 2:
        //   low  = {0.0, 0.1}, high = {0.9, 1.0}
        //   update = (max(low) + min(high)) / 2 = (0.1 + 0.9)/2 = 0.5.
        let mut node = Dbac::new(params(), val(0.5));
        node.receive(Port::new(1), &[msg(0.0, 0)]);
        node.receive(Port::new(2), &[msg(0.1, 0)]);
        node.receive(Port::new(3), &[msg(0.9, 0)]);
        assert_eq!(node.phase(), Phase::ZERO);
        node.receive(Port::new(4), &[msg(1.0, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.current_value(), val(0.5));
    }

    #[test]
    fn byzantine_extremes_are_trimmed() {
        // f = 1 attacker sends 1.0; honest values cluster at 0.2. The
        // update must stay bracketed by honest values: low = {0.2, 0.2},
        // high = {0.2, 1.0} -> (0.2 + 0.2)/2 = 0.2... wait min(high) = 0.2.
        let mut node = Dbac::new(params(), val(0.2));
        node.receive(Port::new(1), &[msg(1.0, 0)]); // byzantine
        node.receive(Port::new(2), &[msg(0.2, 0)]);
        node.receive(Port::new(3), &[msg(0.2, 0)]);
        node.receive(Port::new(4), &[msg(0.2, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.current_value(), val(0.2), "one attacker moved nothing");
    }

    #[test]
    fn higher_phase_messages_are_accepted_but_no_jump() {
        let mut node = Dbac::new(params(), val(0.5));
        node.receive(Port::new(1), &[msg(0.6, 3)]);
        assert_eq!(node.phase(), Phase::ZERO, "DBAC never jumps");
        assert_eq!(node.distinct_count(), 2, "future value still counts");
    }

    #[test]
    fn phase_forgery_cannot_fast_forward() {
        // Even a phase-1000 claim only ever contributes one list entry.
        let mut node = Dbac::new(params(), val(0.5));
        node.receive(Port::new(1), &[msg(1.0, 1000)]);
        node.receive(Port::new(1), &[msg(1.0, 1001)]);
        assert_eq!(node.phase(), Phase::ZERO);
        assert_eq!(node.distinct_count(), 2, "one port, one contribution");
    }

    #[test]
    fn stale_messages_rejected() {
        let mut node = Dbac::with_pend(params(), val(0.5), 10);
        // Drive to phase 1 first.
        for p in 1..5 {
            node.receive(Port::new(p), &[msg(0.5, 0)]);
        }
        assert_eq!(node.phase(), Phase::new(1));
        node.receive(Port::new(1), &[msg(0.0, 0)]);
        assert_eq!(node.distinct_count(), 1, "phase-0 message is stale now");
    }

    #[test]
    fn duplicate_port_ignored() {
        let mut node = Dbac::new(params(), val(0.5));
        node.receive(Port::new(1), &[msg(0.1, 0)]);
        node.receive(Port::new(1), &[msg(0.2, 0)]);
        assert_eq!(node.distinct_count(), 2);
    }

    #[test]
    fn reset_after_advance_restores_self_only() {
        let mut node = Dbac::new(params(), val(0.5));
        for p in 1..=4 {
            node.receive(Port::new(p), &[msg(0.5, 0)]);
        }
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.distinct_count(), 1);
        assert_eq!(node.low_list(), vec![val(0.5)]);
    }

    #[test]
    fn batch_processed_in_ascending_phase_order() {
        // A piggybacked batch carrying phases {2, 0}: the node (phase 0)
        // must store the phase-0 value, not the phase-2 one.
        let mut node = Dbac::new(params(), val(0.5));
        node.receive(Port::new(1), &[msg(0.9, 2), msg(0.1, 0)]);
        assert_eq!(node.distinct_count(), 2);
        // low list now contains 0.1 (the same-phase value), not 0.9.
        assert_eq!(node.low_list(), vec![val(0.1), val(0.5)]);
    }

    #[test]
    fn outputs_at_custom_pend() {
        let mut node = Dbac::with_pend(params(), val(0.5), 1);
        for p in 1..=4 {
            node.receive(Port::new(p), &[msg(0.5, 0)]);
        }
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.output(), Some(val(0.5)));
        // Frozen afterwards.
        node.receive(Port::new(1), &[msg(0.0, 1)]);
        assert_eq!(node.distinct_count(), 1);
    }

    #[test]
    fn reset_instance_matches_fresh_construction() {
        let mut used = Dbac::with_pend(params(), val(0.5), 10);
        for p in 1..=4 {
            node_recv(&mut used, p, 0.5 - 0.05 * p as f64);
        }
        assert!(used.distinct_count() > 1 || used.phase() > Phase::ZERO);
        assert!(used.reset_instance(val(0.7)));
        let fresh = Dbac::with_pend(params(), val(0.7), 10);
        assert_eq!(format!("{used:?}"), format!("{fresh:?}"));
    }

    fn node_recv(node: &mut Dbac, port: usize, v: f64) {
        node.receive(Port::new(port), &[msg(v, 0)]);
    }

    #[test]
    fn eq6_pend_value() {
        // Documented in the type-level example: n = 6 -> rate 0.984375.
        assert_eq!(Dbac::new(params(), val(0.0)).pend(), 147);
    }

    #[test]
    fn lists_trim_beyond_capacity() {
        // f + 1 = 2. Seed with own 0.5, then add 5 values; low must keep
        // the 2 smallest, high the 2 largest.
        let mut node = Dbac::with_pend(params(), val(0.5), 100);
        // Use a bigger quorum so we stay in phase 0: only add 3 (self+3 < 5).
        node.receive(Port::new(1), &[msg(0.9, 0)]);
        node.receive(Port::new(2), &[msg(0.05, 0)]);
        node.receive(Port::new(3), &[msg(0.3, 0)]);
        assert_eq!(node.low_list(), vec![val(0.05), val(0.3)]);
        assert_eq!(node.high_list(), vec![val(0.5), val(0.9)]);
    }

    #[test]
    fn update_is_bracketed_by_fault_free_values() {
        // Lemma 5 microcosm: with at most f = 1 byzantine among accepted
        // values, max(R_low) and min(R_high) are each >= some honest value
        // and <= some honest value.
        let mut node = Dbac::new(params(), val(0.4));
        node.receive(Port::new(1), &[msg(0.0, 0)]); // byz low
        node.receive(Port::new(2), &[msg(0.35, 0)]);
        node.receive(Port::new(3), &[msg(0.45, 0)]);
        node.receive(Port::new(4), &[msg(0.5, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        let v = node.current_value().get();
        assert!((0.35..=0.5).contains(&v), "update {v} escaped honest hull");
    }
}
