//! Baseline and strawman algorithms.
//!
//! §II-D of the paper explains why prior algorithms fail in the anonymous
//! dynamic model. We implement the representatives so the experiments can
//! *show* it (E11), and two deliberately incorrect "strawmen" that make the
//! impossibility constructions concrete: the proofs of Theorems 9 and 10
//! argue that any algorithm forced to decide from local information under
//! the sub-threshold adversary must violate ε-agreement — the strawmen are
//! exactly such algorithms, and the experiments exhibit the violation
//! (E04, E05, E07).

use adn_types::{Batch, Message, Params, Phase, Port, Value};

use crate::Algorithm;

/// Classic reliable-channel iterated averaging (Dolev et al. 1986 style):
/// every round, average the extremes of everything heard this round
/// (including the own value) and move on unconditionally.
///
/// On a complete graph with no faults this converges at rate 1/2 per
/// *round* and is the paper's "category (i)" prior art. Under a dynamic
/// message adversary it never blocks but loses its convergence guarantee —
/// two nodes kept apart by the adversary stop contracting (E11 shows the
/// stall). Runs for `⌈log₂(1/ε)⌉` rounds, its correct duration in the
/// reliable setting.
#[derive(Debug, Clone)]
pub struct ReliableAc {
    value: Value,
    round_min: Value,
    round_max: Value,
    rounds_done: u64,
    rounds_total: u64,
    output: Option<Value>,
}

impl ReliableAc {
    /// Creates a node with the given input; runs `⌈log₂(1/ε)⌉` rounds.
    pub fn new(params: Params, input: Value) -> Self {
        ReliableAc {
            value: input,
            round_min: input,
            round_max: input,
            rounds_done: 0,
            rounds_total: params.dac_pend(),
            output: if params.dac_pend() == 0 {
                Some(input)
            } else {
                None
            },
        }
    }
}

impl Algorithm for ReliableAc {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, Phase::new(self.rounds_done)));
    }

    fn receive(&mut self, _port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        for msg in batch {
            // No phase filtering: the algorithm trusts the round structure,
            // as it may under reliable channels.
            if msg.value() < self.round_min {
                self.round_min = msg.value();
            }
            if msg.value() > self.round_max {
                self.round_max = msg.value();
            }
        }
    }

    fn end_round(&mut self) {
        if self.output.is_some() {
            return;
        }
        self.value = self.round_min.midpoint(self.round_max);
        self.round_min = self.value;
        self.round_max = self.value;
        self.rounds_done += 1;
        if self.rounds_done >= self.rounds_total {
            self.output = Some(self.value);
        }
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        Phase::new(self.rounds_done)
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "reliable-ac"
    }
}

/// Classic iterated **Byzantine** approximate consensus (the BAC family,
/// e.g. Dolev et al. / Vaidya et al.) transplanted naively: wait for
/// `n − f` values **from the same phase**, trim the `f` lowest and `f`
/// highest, average the extremes of the rest.
///
/// Correct with reliable channels and `n ≥ 3f + 1` on complete graphs; in
/// the dynamic model it **deadlocks** as soon as the adversary keeps any
/// phase's messages below `n − f` at some node — there is no jump rule and
/// no future-phase acceptance to bail it out (§II-D, category (i); E11
/// demonstrates the block).
#[derive(Debug, Clone)]
pub struct Bac {
    params: Params,
    pend: u64,
    value: Value,
    phase: Phase,
    ports_seen: Vec<bool>,
    collected: Vec<Value>,
    output: Option<Value>,
}

impl Bac {
    /// Creates a node with the given input; terminates at DAC's `pend`
    /// (rate 1/2 in its home setting).
    pub fn new(params: Params, input: Value) -> Self {
        Bac {
            params,
            pend: params.dac_pend(),
            value: input,
            phase: Phase::ZERO,
            ports_seen: vec![false; params.n()],
            collected: vec![input],
            output: if params.dac_pend() == 0 {
                Some(input)
            } else {
                None
            },
        }
    }

    /// Values collected toward the current phase's quorum (own included).
    pub fn collected_count(&self) -> usize {
        self.collected.len()
    }
}

impl Algorithm for Bac {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, self.phase));
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        for msg in batch {
            // Same-phase only: the fatal rigidity.
            if msg.phase() == self.phase && !self.ports_seen[port.index()] {
                self.ports_seen[port.index()] = true;
                self.collected.push(msg.value());
            }
        }
        let quorum = self.params.n() - self.params.f();
        if self.collected.len() >= quorum {
            // Trim f lowest and f highest; n >= 3f+1 keeps the middle
            // non-empty in BAC's home setting. Only the two surviving
            // extremes matter, so two O(len) selections replace the full
            // sort, and the collection buffer is recycled in place —
            // phase transitions allocate nothing.
            let f = self.params.f();
            let len = self.collected.len();
            assert!(
                len > 2 * f,
                "trimming {f} from each side of {len} values leaves nothing: \
                 BAC requires n >= 3f + 1"
            );
            let lo = *self.collected.select_nth_unstable(f).1;
            let hi = *self.collected.select_nth_unstable(len - 1 - f).1;
            self.value = lo.midpoint(hi);
            self.phase = self.phase.next();
            self.ports_seen.fill(false);
            self.collected.clear();
            self.collected.push(self.value);
            if self.phase.as_u64() >= self.pend {
                self.output = Some(self.value);
            }
        }
    }

    fn end_round(&mut self) {}

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "bac"
    }
}

/// Strawman for the impossibility demos: run for a fixed number of rounds,
/// then output the midpoint of the extremes of everything ever heard.
///
/// This is the "algorithm that must decide from ≤ ⌊n/2⌋ nodes' worth of
/// information" that the Theorem 9 proof quantifies over. It always
/// terminates; under the partition adversary with split inputs its outputs
/// differ by the full input range — the concrete ε-agreement violation of
/// E04/E05.
#[derive(Debug, Clone)]
pub struct LocalAverager {
    value: Value,
    vmin: Value,
    vmax: Value,
    rounds_done: u64,
    decide_after: u64,
    output: Option<Value>,
}

impl LocalAverager {
    /// Creates a node that decides after `decide_after` rounds.
    pub fn new(input: Value, decide_after: u64) -> Self {
        LocalAverager {
            value: input,
            vmin: input,
            vmax: input,
            rounds_done: 0,
            decide_after,
            output: if decide_after == 0 { Some(input) } else { None },
        }
    }
}

impl Algorithm for LocalAverager {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, Phase::new(self.rounds_done)));
    }

    fn receive(&mut self, _port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        for msg in batch {
            if msg.value() < self.vmin {
                self.vmin = msg.value();
            }
            if msg.value() > self.vmax {
                self.vmax = msg.value();
            }
        }
    }

    fn end_round(&mut self) {
        if self.output.is_some() {
            return;
        }
        self.value = self.vmin.midpoint(self.vmax);
        self.rounds_done += 1;
        if self.rounds_done >= self.decide_after {
            self.output = Some(self.value);
        }
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        Phase::new(self.rounds_done)
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "local-averager"
    }
}

/// Byzantine-aware strawman for the Theorem 10 demo: like
/// [`LocalAverager`], but it remembers the latest value per **distinct
/// sender** (local port) and, before deciding, discards the `f` lowest and
/// `f` highest senders' values — the minimum any validity-respecting
/// algorithm must do, since `f` extremists could all be Byzantine.
///
/// Under the Theorem 10 split adversary plus two-faced Byzantine senders
/// this forces the split of the proof: group A sees exactly `f` senders
/// claiming 1 (potentially all Byzantine) and must settle on 0; group B
/// symmetrically on 1 — ε-agreement is violated (E07).
#[derive(Debug, Clone)]
pub struct TrimmedLocalAverager {
    f: usize,
    /// Latest value heard per port; own value tracked separately.
    per_port: Vec<Option<Value>>,
    input: Value,
    value: Value,
    rounds_done: u64,
    decide_after: u64,
    /// Reused collection buffer for the decision-time trimmed reduction.
    scratch: Vec<Value>,
    output: Option<Value>,
}

impl TrimmedLocalAverager {
    /// Creates a node for a system of `n` nodes that decides after
    /// `decide_after` rounds, trimming `f` sender extremes on each side.
    pub fn new(n: usize, f: usize, input: Value, decide_after: u64) -> Self {
        TrimmedLocalAverager {
            f,
            per_port: vec![None; n],
            input,
            value: input,
            rounds_done: 0,
            decide_after,
            scratch: Vec::with_capacity(n + 1),
            output: if decide_after == 0 { Some(input) } else { None },
        }
    }
}

impl Algorithm for TrimmedLocalAverager {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, Phase::new(self.rounds_done)));
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        if let Some(msg) = batch.last() {
            self.per_port[port.index()] = Some(msg.value());
        }
    }

    fn end_round(&mut self) {
        if self.output.is_some() {
            return;
        }
        self.rounds_done += 1;
        if self.rounds_done >= self.decide_after {
            self.scratch.clear();
            self.scratch.extend(self.per_port.iter().flatten().copied());
            self.scratch.push(self.input);
            let len = self.scratch.len();
            // Only the extremes of the trimmed middle matter: two O(len)
            // selections instead of a full sort.
            let lo_idx = self.f.min(len - 1);
            let hi_idx = (len - self.f.min(len)).max(lo_idx + 1) - 1;
            let lo = *self.scratch.select_nth_unstable(lo_idx).1;
            let hi = *self.scratch.select_nth_unstable(hi_idx).1;
            self.value = lo.midpoint(hi);
            self.output = Some(self.value);
        }
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        Phase::new(self.rounds_done)
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "trimmed-local-averager"
    }
}

/// Min-flooding **exact** binary consensus attempt: broadcast the lowest
/// value seen so far; after `rounds` rounds output it.
///
/// On a complete graph (or any graph where the minimum's holder reaches
/// everyone within `rounds` hops) this solves exact consensus among
/// fault-free nodes. Corollary 1 (via Gafni–Losa's Theorem 8) says **no**
/// deterministic algorithm can: under `(1, n−2)`-dynaDegree the adversary
/// may drop, at every receiver, precisely the link carrying the minimum —
/// see [`OmitOne`](../../adn_adversary/struct.OmitOne.html) — leaving its
/// holder in permanent disagreement with everyone else (experiment E15).
#[derive(Debug, Clone)]
pub struct MinFlood {
    value: Value,
    rounds_done: u64,
    decide_after: u64,
    output: Option<Value>,
}

impl MinFlood {
    /// Creates a node that floods its minimum for `decide_after` rounds.
    pub fn new(input: Value, decide_after: u64) -> Self {
        MinFlood {
            value: input,
            rounds_done: 0,
            decide_after,
            output: if decide_after == 0 { Some(input) } else { None },
        }
    }
}

impl Algorithm for MinFlood {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, Phase::new(self.rounds_done)));
    }

    fn receive(&mut self, _port: Port, batch: &[Message]) {
        if self.output.is_some() {
            return;
        }
        for msg in batch {
            if msg.value() < self.value {
                self.value = msg.value();
            }
        }
    }

    fn end_round(&mut self) {
        if self.output.is_some() {
            return;
        }
        self.rounds_done += 1;
        if self.rounds_done >= self.decide_after {
            self.output = Some(self.value);
        }
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        Phase::new(self.rounds_done)
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn name(&self) -> &'static str {
        "min-flood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(v: f64) -> Value {
        Value::new(v).unwrap()
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(val(v), Phase::new(p))
    }

    #[test]
    fn reliable_ac_halves_range_per_round() {
        let params = Params::fault_free(3, 0.25).unwrap(); // 2 rounds
        let mut a = ReliableAc::new(params, val(0.0));
        a.receive(Port::new(1), &[msg(1.0, 0)]);
        a.end_round();
        assert_eq!(a.current_value(), Value::HALF);
        assert!(a.output().is_none());
        a.receive(Port::new(1), &[msg(0.5, 1)]);
        a.end_round();
        assert_eq!(a.output(), Some(Value::HALF));
    }

    #[test]
    fn reliable_ac_with_no_messages_keeps_value() {
        let params = Params::fault_free(3, 0.25).unwrap();
        let mut a = ReliableAc::new(params, val(0.3));
        a.end_round();
        assert_eq!(a.current_value(), val(0.3));
    }

    #[test]
    fn bac_advances_only_on_same_phase_quorum() {
        // n = 4, f = 1: quorum n - f = 3 (self + 2).
        let params = Params::new(4, 1, 0.25).unwrap();
        let mut b = Bac::new(params, val(0.0));
        b.receive(Port::new(1), &[msg(1.0, 0)]);
        assert_eq!(b.phase(), Phase::ZERO);
        b.receive(Port::new(2), &[msg(0.5, 0)]);
        assert_eq!(b.phase(), Phase::new(1));
        // Trimmed: sorted {0, 0.5, 1}, drop 1 low + 1 high -> {0.5}.
        assert_eq!(b.current_value(), Value::HALF);
    }

    #[test]
    fn bac_ignores_future_phases_and_blocks() {
        let params = Params::new(4, 1, 0.25).unwrap();
        let mut b = Bac::new(params, val(0.0));
        // Future-phase messages do nothing: the fatal rigidity.
        b.receive(Port::new(1), &[msg(1.0, 3)]);
        b.receive(Port::new(2), &[msg(1.0, 3)]);
        b.receive(Port::new(3), &[msg(1.0, 3)]);
        assert_eq!(b.phase(), Phase::ZERO);
        assert_eq!(b.collected_count(), 1);
        assert!(b.output().is_none());
    }

    #[test]
    fn bac_dedups_ports_within_phase() {
        let params = Params::new(4, 1, 0.25).unwrap();
        let mut b = Bac::new(params, val(0.0));
        b.receive(Port::new(1), &[msg(1.0, 0)]);
        b.receive(Port::new(1), &[msg(0.9, 0)]);
        assert_eq!(b.collected_count(), 2);
    }

    #[test]
    fn local_averager_decides_after_r_rounds() {
        let mut s = LocalAverager::new(val(0.0), 2);
        s.receive(Port::new(1), &[msg(1.0, 0)]);
        s.end_round();
        assert!(s.output().is_none());
        s.end_round();
        // Heard extremes {0, 1} in round 0: value 0.5 after round 0, stays.
        assert_eq!(s.output(), Some(Value::HALF));
    }

    #[test]
    fn local_averager_with_no_contact_outputs_input() {
        let mut s = LocalAverager::new(val(0.8), 3);
        for _ in 0..3 {
            s.end_round();
        }
        assert_eq!(s.output(), Some(val(0.8)));
    }

    #[test]
    fn trimmed_averager_trims_f_sender_extremes() {
        let mut s = TrimmedLocalAverager::new(6, 1, val(0.5), 1);
        s.receive(Port::new(1), &[msg(0.0, 0)]); // liar
        s.receive(Port::new(2), &[msg(0.4, 0)]);
        s.receive(Port::new(3), &[msg(0.6, 0)]);
        s.receive(Port::new(4), &[msg(1.0, 0)]); // liar
        s.end_round();
        // Sorted {0, 0.4, 0.5, 0.6, 1}; trimmed -> {0.4, 0.5, 0.6} -> 0.5.
        assert_eq!(s.output(), Some(Value::HALF));
    }

    #[test]
    fn trimmed_averager_dedups_senders_across_rounds() {
        // The same liar repeating itself for many rounds still only
        // occupies one trimmed slot.
        let mut s = TrimmedLocalAverager::new(6, 1, val(0.5), 3);
        for _ in 0..3 {
            s.receive(Port::new(1), &[msg(1.0, 0)]); // liar, every round
            s.receive(Port::new(2), &[msg(0.5, 0)]);
            s.end_round();
        }
        assert_eq!(s.output(), Some(Value::HALF));
    }

    #[test]
    fn trimmed_averager_survives_tiny_sample() {
        // Fewer than 2f+1 senders heard: trim degenerates but must not
        // panic and must still output something in range.
        let mut s = TrimmedLocalAverager::new(6, 2, val(0.5), 1);
        s.receive(Port::new(1), &[msg(0.9, 0)]);
        s.end_round();
        let out = s.output().unwrap().get();
        assert!((0.0..=1.0).contains(&out));
    }

    #[test]
    fn min_flood_adopts_minimum() {
        let mut m = MinFlood::new(val(0.7), 2);
        m.receive(Port::new(1), &[msg(0.3, 0)]);
        m.receive(Port::new(2), &[msg(0.9, 0)]);
        m.end_round();
        assert_eq!(m.current_value(), val(0.3));
        assert!(m.output().is_none());
        m.end_round();
        assert_eq!(m.output(), Some(val(0.3)));
    }

    #[test]
    fn min_flood_frozen_after_decision() {
        let mut m = MinFlood::new(val(0.7), 1);
        m.end_round();
        m.receive(Port::new(1), &[msg(0.0, 0)]);
        assert_eq!(m.output(), Some(val(0.7)));
    }

    #[test]
    fn names_are_distinct() {
        let params = Params::new(4, 1, 0.25).unwrap();
        let names = [
            ReliableAc::new(params, val(0.0)).name(),
            Bac::new(params, val(0.0)).name(),
            LocalAverager::new(val(0.0), 1).name(),
            TrimmedLocalAverager::new(4, 1, val(0.0), 1).name(),
            MinFlood::new(val(0.0), 1).name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
