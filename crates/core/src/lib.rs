//! The paper's contribution: approximate consensus algorithms for
//! anonymous dynamic networks.
//!
//! This crate implements, against the [`Algorithm`] state-machine
//! interface:
//!
//! * [`Dac`] — **D**ynamic **A**pproximate **C**onsensus (Algorithm 1):
//!   crash-tolerant, optimal convergence rate 1/2, correct under
//!   `(T, ⌊n/2⌋)`-dynaDegree with `n ≥ 2f + 1`.
//! * [`Dbac`] — **D**ynamic **B**yzantine **A**pproximate **C**onsensus
//!   (Algorithm 2): Byzantine-tolerant, convergence rate ≤ `1 − 2⁻ⁿ`,
//!   correct under `(T, ⌊(n+3f)/2⌋)`-dynaDegree with `n ≥ 5f + 1`.
//! * [`DbacPiggyback`] — DBAC plus a bounded history of past states per
//!   broadcast (accept-oldest variant).
//! * [`FullExchange`] — the §VII bandwidth/convergence trade-off: the
//!   reliable-channel rate-1/2 algorithm simulated by piggybacking a
//!   bounded history.
//! * [`baseline`] — prior-art algorithms that *fail* in this model
//!   (motivating §II-D) and strawmen for the impossibility experiments.
//!
//! # The execution model
//!
//! An [`Algorithm`] instance is one node's deterministic state machine.
//! Each synchronous round the simulator:
//!
//! 1. calls [`Algorithm::broadcast_into`] with a reusable [`Batch`] the
//!    node fills with its message batch (the engine keeps one buffer per
//!    node alive across rounds, so steady-state rounds allocate nothing);
//! 2. delivers batches from in-neighbors chosen by the adversary via
//!    [`Algorithm::receive`], identified only by local port;
//! 3. calls [`Algorithm::end_round`].
//!
//! Self-delivery is internal: implementations account for their own value
//! directly (the paper's `R_i[i] = 1`), so the substrate never routes a
//! node's message back to itself.
//!
//! # Example
//!
//! ```
//! use adn_core::{Algorithm, Dac};
//! use adn_types::{Batch, Params, Port, Value};
//!
//! let params = Params::fault_free(3, 0.25)?;
//! let mut node = Dac::new(params, Value::ZERO);
//! let mut peer = Dac::new(params, Value::ONE);
//!
//! // The round engine owns one reusable batch per node and refills it
//! // every round; plain DAC stages exactly one message.
//! let mut batch = Batch::new();
//! peer.broadcast_into(&mut batch);
//! assert_eq!(batch.len(), 1);
//!
//! // Receive same-phase values from distinct ports: quorum for n = 3 is
//! // floor(3/2) + 1 = 2 (self + 1), so one foreign value suffices.
//! node.receive(Port::new(1), &batch);
//! assert_eq!(node.current_value(), Value::HALF); // midpoint of 0 and 1
//! # Ok::<(), adn_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod baseline;
mod dac;
mod dbac;
mod full_exchange;
pub mod lanes;
mod piggyback;
pub mod plane;

pub use dac::Dac;
pub use dbac::Dbac;
pub use full_exchange::FullExchange;
pub use lanes::{DacLanes, DbacLanes, LanePlane, LANE_WIDTH};
pub use piggyback::DbacPiggyback;
pub use plane::{AlgorithmPlane, DacPlane, DbacPlane, PlaneShard, MAX_PLANE_SHARDS};

use std::fmt;

use adn_types::{Batch, Message, Phase, Port, Value};

/// One node's deterministic per-round state machine.
///
/// See the [crate docs](crate) for the round structure. Implementations
/// must be deterministic: identical call sequences produce identical
/// states (the simulator's replay tests rely on it).
pub trait Algorithm: fmt::Debug {
    /// Writes the batch of messages this node broadcasts this round into
    /// `out`. Plain DAC and DBAC stage exactly one message; piggybacking
    /// variants stage several; staging nothing means staying silent.
    ///
    /// The caller passes `out` empty and reuses the same buffer across
    /// rounds, so implementations must only append — never allocate their
    /// own vector — to keep the steady-state message plane allocation
    /// free.
    fn broadcast_into(&mut self, out: &mut Batch);

    /// Convenience form of [`Algorithm::broadcast_into`] that allocates a
    /// fresh vector per call. Prefer `broadcast_into` on hot paths; this
    /// shim exists for tests, examples, and exploratory code.
    fn broadcast(&mut self) -> Vec<Message> {
        let mut out = Batch::new();
        self.broadcast_into(&mut out);
        out.into_vec()
    }

    /// Delivers the batch a single in-neighbor sent this round, identified
    /// by the local `port` it arrived on. Called at most once per port per
    /// round.
    fn receive(&mut self, port: Port, batch: &[Message]);

    /// Hook called after all deliveries of the round.
    fn end_round(&mut self);

    /// The decided output, once the algorithm's termination rule fires
    /// (`p = pend`); `None` before that.
    fn output(&self) -> Option<Value>;

    /// The node's current phase index (for observers and adversaries).
    fn phase(&self) -> Phase;

    /// The node's current state value (for observers and adversaries).
    fn current_value(&self) -> Value;

    /// Resets the node to its initial state against a fresh `input`, as if
    /// freshly constructed — the per-node half of the service layer's
    /// allocation-free instance turnover (the columnar half is
    /// [`AlgorithmPlane::reset_instance`]). Returns `false` (leaving the
    /// state untouched) if the algorithm does not support in-place resets;
    /// the service layer refuses to run such algorithms rather than
    /// silently reconstructing them. DAC and DBAC override this; the
    /// baselines and piggybacking variants keep the default.
    fn reset_instance(&mut self, input: Value) -> bool {
        let _ = input;
        false
    }

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Constructor closure for the per-node path: `(node_index, input)` to a
/// boxed state machine.
type NodeCtor = Box<dyn Fn(usize, Value) -> Box<dyn Algorithm>>;
/// Constructor closure for the columnar path: the full input vector to
/// one plane holding every slot.
type PlaneCtor = Box<dyn Fn(&[Value]) -> Box<dyn AlgorithmPlane>>;
/// Constructor closure for the trial-lane path: a **lane-major** input
/// vector (`inputs[t * n + v]` is trial `t`'s input for node `v`) to one
/// lane plane holding every `(slot, trial)` pair.
type LaneCtor = Box<dyn Fn(&[Value]) -> Box<dyn LanePlane>>;

/// Constructor bundle used by the simulator and experiment runners to
/// instantiate an algorithm: a per-node builder mapping `(node_index,
/// input)` to a boxed state machine, plus — for plane-capable algorithms
/// (DAC, DBAC) — a whole-system builder for the columnar
/// [`AlgorithmPlane`] the engine's sender-major fast path drives.
///
/// The per-node path is always available and is the semantic reference;
/// the plane, when present, must be observationally identical to it (the
/// engine auto-selects between them, see `SimBuilder::algorithm_plane` in
/// `adn-sim`).
pub struct AlgorithmFactory {
    make: NodeCtor,
    plane: Option<PlaneCtor>,
    lanes: Option<(u64, LaneCtor)>,
}

impl AlgorithmFactory {
    /// A factory with only the per-node path — every algorithm supports
    /// this.
    pub fn new(make: impl Fn(usize, Value) -> Box<dyn Algorithm> + 'static) -> Self {
        AlgorithmFactory {
            make: Box::new(make),
            plane: None,
            lanes: None,
        }
    }

    /// A factory that additionally offers a columnar plane. `plane` maps
    /// the full input vector to one plane holding every slot; it must be
    /// observationally identical to `n` state machines built by `make`.
    pub fn with_plane(
        make: impl Fn(usize, Value) -> Box<dyn Algorithm> + 'static,
        plane: impl Fn(&[Value]) -> Box<dyn AlgorithmPlane> + 'static,
    ) -> Self {
        AlgorithmFactory {
            make: Box::new(make),
            plane: Some(Box::new(plane)),
            lanes: None,
        }
    }

    /// Adds the trial-lane path: `ctor` maps a **lane-major** input
    /// vector to one [`LanePlane`] whose every lane must be
    /// observationally identical to a scalar run of that trial.
    ///
    /// `key` is the factory's lane fingerprint: two factories may share
    /// one lane plane **iff** their keys are equal, so the key must hash
    /// every constructor parameter the closure captures (algorithm
    /// identity, `Params`, an explicit `pend`, ...). A batch driver
    /// refuses to merge trials whose factories disagree on the key.
    pub fn with_lanes(
        mut self,
        key: u64,
        ctor: impl Fn(&[Value]) -> Box<dyn LanePlane> + 'static,
    ) -> Self {
        self.lanes = Some((key, Box::new(ctor)));
        self
    }

    /// Instantiates the state machine of one node.
    pub fn make(&self, node_index: usize, input: Value) -> Box<dyn Algorithm> {
        (self.make)(node_index, input)
    }

    /// Whether this factory can build a columnar plane.
    pub fn has_plane(&self) -> bool {
        self.plane.is_some()
    }

    /// Instantiates the columnar plane over the full input vector, or
    /// `None` if this algorithm has no plane.
    pub fn make_plane(&self, inputs: &[Value]) -> Option<Box<dyn AlgorithmPlane>> {
        self.plane.as_ref().map(|p| p(inputs))
    }

    /// The lane fingerprint, or `None` if this factory has no trial-lane
    /// path (see [`AlgorithmFactory::with_lanes`]).
    pub fn lane_key(&self) -> Option<u64> {
        self.lanes.as_ref().map(|(key, _)| *key)
    }

    /// Instantiates the trial-lane plane over a lane-major input vector,
    /// or `None` if this algorithm has no lane path.
    pub fn make_lanes(&self, inputs: &[Value]) -> Option<Box<dyn LanePlane>> {
        self.lanes.as_ref().map(|(_, ctor)| ctor(inputs))
    }
}

impl fmt::Debug for AlgorithmFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlgorithmFactory(plane={})", self.has_plane())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Collects each node's single broadcast message (panics if an
    /// algorithm broadcasts a batch — these helpers are for DAC/DBAC).
    pub fn single_broadcast(node: &mut dyn Algorithm) -> Message {
        let batch = node.broadcast();
        assert_eq!(batch.len(), 1, "expected a single-message broadcast");
        batch[0]
    }
}
