use adn_types::{Batch, Message, Params, Phase, Port, Value};

use crate::Algorithm;

/// DAC — Dynamic Approximate Consensus (Algorithm 1 of the paper).
///
/// Crash-tolerant approximate consensus for anonymous dynamic networks.
/// Correct when `n ≥ 2f + 1` and the realized delivery graph satisfies
/// `(T, ⌊n/2⌋)`-dynaDegree for some finite (unknown) `T`. Converges with
/// the optimal rate 1/2 per phase and outputs at phase
/// `pend = ⌈log₂(1/ε)⌉` (Eq. 2).
///
/// The two ideas that distinguish DAC from classic reliable-channel
/// iterating algorithms (§IV):
///
/// 1. **Jump**: on receiving a message from a higher phase `q`, the node
///    adopts the received state wholesale and jumps to `q` — no need to
///    re-send old phases under message loss.
/// 2. **Port bit vector**: the node tracks which local ports already
///    contributed a value *in its current phase*, so `⌊n/2⌋ + 1` distinct
///    same-phase values (its own included) can be recognized even when
///    they arrive scattered across many rounds.
///
/// Only `v_min`/`v_max` of the current phase are stored (not the multiset),
/// so the state is O(n) bits for the port vector plus O(1) values —
/// matching the paper's frugality.
///
/// # Example
///
/// ```
/// use adn_core::{Algorithm, Dac};
/// use adn_types::{Params, Port, Value};
///
/// let params = Params::new(5, 1, 0.5)?;
/// let mut node = Dac::new(params, Value::new(0.2)?);
/// assert_eq!(node.phase().as_u64(), 0);
/// assert!(node.output().is_none());
/// # Ok::<(), adn_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dac {
    params: Params,
    pend: u64,
    value: Value,
    vmin: Value,
    vmax: Value,
    phase: Phase,
    /// `R_i` — which ports contributed a value in the current phase. The
    /// node's own contribution (`R_i[i] = 1` in the paper) is tracked
    /// implicitly: see [`Dac::distinct_count`].
    ports_seen: Vec<bool>,
    seen_count: usize,
    output: Option<Value>,
}

impl Dac {
    /// Creates a node with the given input, terminating at the paper's
    /// `pend = ⌈log₂(1/ε)⌉`.
    pub fn new(params: Params, input: Value) -> Self {
        Dac::with_pend(params, input, params.dac_pend())
    }

    /// Creates a node with an explicit termination phase (used by
    /// experiments that run past or short of the paper's bound).
    pub fn with_pend(params: Params, input: Value, pend: u64) -> Self {
        let mut node = Dac {
            params,
            pend,
            value: input,
            vmin: input,
            vmax: input,
            phase: Phase::ZERO,
            ports_seen: vec![false; params.n()],
            seen_count: 0,
            output: None,
        };
        node.maybe_output();
        node
    }

    /// The termination phase in effect.
    pub fn pend(&self) -> u64 {
        self.pend
    }

    /// Distinct same-phase contributions so far, including the node's own
    /// (`|R_i|` in the paper).
    pub fn distinct_count(&self) -> usize {
        self.seen_count + 1
    }

    /// `R_i[port]` — whether this port already contributed in the current
    /// phase.
    pub fn port_seen(&self, port: Port) -> bool {
        self.ports_seen[port.index()]
    }

    /// Alg. 1, `RESET()`: clear the port vector and collapse the tracked
    /// extrema onto the current value.
    fn reset(&mut self) {
        self.ports_seen.fill(false);
        self.seen_count = 0;
        self.vmin = self.value;
        self.vmax = self.value;
    }

    /// Alg. 1, `STORE(v_j)`: widen the tracked extrema.
    fn store(&mut self, v: Value) {
        if v < self.vmin {
            self.vmin = v;
        } else if v > self.vmax {
            self.vmax = v;
        }
    }

    fn maybe_output(&mut self) {
        if self.output.is_none() && self.phase.as_u64() >= self.pend {
            self.output = Some(self.value);
        }
    }

    /// Processes one received message (Alg. 1 lines 5–15).
    fn process(&mut self, port: Port, msg: Message) {
        if self.output.is_some() {
            // Decided nodes keep broadcasting but no longer update; their
            // phase can only be pend, and every fault-free peer reaches
            // pend on its own (or jumps straight to it).
            return;
        }
        if msg.phase() > self.phase {
            // Jump: adopt the future state wholesale.
            self.value = msg.value();
            self.phase = msg.phase();
            self.reset();
        } else if msg.phase() == self.phase && !self.ports_seen[port.index()] {
            self.ports_seen[port.index()] = true;
            self.seen_count += 1;
            self.store(msg.value());
        }
        self.try_advance();
    }

    /// Advances while the quorum condition already holds — in particular
    /// for the degenerate `n = 1` system whose quorum is the node itself.
    fn try_advance(&mut self) {
        while self.output.is_none() && self.distinct_count() >= self.params.dac_quorum() {
            self.value = self.vmin.midpoint(self.vmax);
            self.phase = self.phase.next();
            self.reset();
            self.maybe_output();
        }
        self.maybe_output();
    }
}

impl Algorithm for Dac {
    fn broadcast_into(&mut self, out: &mut Batch) {
        out.push(Message::new(self.value, self.phase));
    }

    fn receive(&mut self, port: Port, batch: &[Message]) {
        for &msg in batch {
            self.process(port, msg);
        }
    }

    fn end_round(&mut self) {
        // A node can be its own quorum only when n = 1; for n >= 2 the
        // initial count of 1 is always below floor(n/2) + 1 and this is a
        // no-op.
        self.try_advance();
    }

    fn output(&self) -> Option<Value> {
        self.output
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn current_value(&self) -> Value {
        self.value
    }

    fn reset_instance(&mut self, input: Value) -> bool {
        self.value = input;
        self.phase = Phase::ZERO;
        self.output = None;
        self.reset();
        self.maybe_output();
        true
    }

    fn name(&self) -> &'static str {
        "dac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::single_broadcast;

    fn params(n: usize, f: usize) -> Params {
        Params::new(n, f, 0.25).unwrap() // pend = 2
    }

    fn msg(v: f64, p: u64) -> Message {
        Message::new(Value::new(v).unwrap(), Phase::new(p))
    }

    #[test]
    fn broadcast_carries_state() {
        let mut node = Dac::new(params(5, 1), Value::new(0.3).unwrap());
        let m = single_broadcast(&mut node);
        assert_eq!(m.value().get(), 0.3);
        assert_eq!(m.phase(), Phase::ZERO);
    }

    #[test]
    fn quorum_advances_phase_with_midpoint() {
        // n = 5: quorum 3 = self + 2 foreign values.
        let mut node = Dac::new(params(5, 1), Value::new(0.0).unwrap());
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        assert_eq!(node.phase(), Phase::ZERO, "2 of 3 contributions");
        node.receive(Port::new(2), &[msg(0.5, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        // vmin = 0.0 (own), vmax = 1.0 -> midpoint 0.5.
        assert_eq!(node.current_value(), Value::HALF);
    }

    #[test]
    fn duplicate_port_does_not_count_twice() {
        let mut node = Dac::new(params(5, 1), Value::ZERO);
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        node.receive(Port::new(1), &[msg(0.9, 0)]);
        node.receive(Port::new(1), &[msg(0.8, 0)]);
        assert_eq!(
            node.phase(),
            Phase::ZERO,
            "same port cannot fill the quorum"
        );
        assert_eq!(node.distinct_count(), 2);
    }

    #[test]
    fn jump_adopts_future_state() {
        let mut node = Dac::new(params(5, 1), Value::ZERO);
        node.receive(Port::new(3), &[msg(0.7, 1)]);
        assert_eq!(node.phase(), Phase::new(1));
        assert_eq!(node.current_value().get(), 0.7);
        // Jump resets the port vector: the same port can contribute anew
        // in the new phase.
        assert_eq!(node.distinct_count(), 1);
    }

    #[test]
    fn jump_resets_extrema_to_adopted_value() {
        let mut node = Dac::new(params(5, 1), Value::ZERO);
        // Phase-0 value widens extrema...
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        // ...then a jump discards them.
        node.receive(Port::new(2), &[msg(0.6, 1)]);
        // Now two phase-1 values complete a quorum around 0.6.
        node.receive(Port::new(1), &[msg(0.6, 1)]);
        node.receive(Port::new(3), &[msg(0.6, 1)]);
        assert_eq!(node.phase(), Phase::new(2));
        assert_eq!(node.current_value().get(), 0.6);
    }

    #[test]
    fn stale_phase_messages_are_ignored() {
        let mut node = Dac::new(params(5, 1), Value::HALF);
        node.receive(Port::new(1), &[msg(0.9, 1)]); // jump to 1
        node.receive(Port::new(2), &[msg(0.0, 0)]); // stale
        assert_eq!(node.distinct_count(), 1, "stale message must not count");
        assert_eq!(node.current_value().get(), 0.9);
    }

    #[test]
    fn outputs_at_pend() {
        // eps = 0.25 -> pend = 2.
        let mut node = Dac::new(params(3, 1), Value::ZERO);
        // n = 3: quorum 2 = self + 1.
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        assert!(node.output().is_none());
        node.receive(Port::new(1), &[msg(0.5, 1)]);
        assert_eq!(node.phase(), Phase::new(2));
        let out = node.output().expect("must decide at pend");
        assert_eq!(out, node.current_value());
    }

    #[test]
    fn output_via_jump() {
        let mut node = Dac::new(params(3, 1), Value::ZERO);
        node.receive(Port::new(2), &[msg(0.42, 2)]);
        assert_eq!(node.output().unwrap().get(), 0.42);
    }

    #[test]
    fn decided_node_freezes() {
        let mut node = Dac::new(params(3, 1), Value::ZERO);
        node.receive(Port::new(2), &[msg(0.42, 2)]);
        let before = node.current_value();
        node.receive(Port::new(1), &[msg(0.9, 5)]);
        assert_eq!(node.current_value(), before);
        assert_eq!(node.output().unwrap(), before);
    }

    #[test]
    fn pend_zero_outputs_input_immediately() {
        let p = Params::new(3, 1, 1.0).unwrap(); // eps = 1 -> pend = 0
        let node = Dac::new(p, Value::new(0.3).unwrap());
        assert_eq!(node.output().unwrap().get(), 0.3);
    }

    #[test]
    fn quorum_can_fill_within_one_batch() {
        // All quorum contributions arriving in one round still advance.
        let mut node = Dac::new(params(5, 1), Value::ZERO);
        node.receive(Port::new(1), &[msg(0.2, 0)]);
        node.receive(Port::new(2), &[msg(0.4, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        // New phase: extrema collapsed onto the new value.
        assert_eq!(node.current_value().get(), 0.2); // mid(0, 0.4)
    }

    #[test]
    fn after_advance_remaining_messages_count_toward_new_phase() {
        // n = 3, quorum 2. Two messages in the same round: the first
        // completes phase 0, the second (phase 1) counts toward phase 1.
        let mut node = Dac::new(params(3, 1), Value::ZERO);
        node.receive(Port::new(1), &[msg(1.0, 0)]);
        assert_eq!(node.phase(), Phase::new(1));
        node.receive(Port::new(2), &[msg(0.5, 1)]);
        assert_eq!(node.phase(), Phase::new(2), "phase-1 quorum completed");
    }

    #[test]
    fn validity_extrema_never_exceed_inputs() {
        // Values stay within [min input, max input] of what was seen.
        let mut node = Dac::new(params(5, 1), Value::new(0.4).unwrap());
        node.receive(Port::new(1), &[msg(0.2, 0)]);
        node.receive(Port::new(2), &[msg(0.6, 0)]);
        let v = node.current_value().get();
        assert!((0.2..=0.6).contains(&v));
    }

    #[test]
    fn reset_instance_matches_fresh_construction() {
        let mut used = Dac::new(params(5, 1), Value::ZERO);
        used.receive(Port::new(1), &[msg(1.0, 0)]);
        used.receive(Port::new(2), &[msg(0.5, 0)]);
        assert!(used.phase() > Phase::ZERO);
        assert!(used.reset_instance(Value::new(0.3).unwrap()));
        let fresh = Dac::new(params(5, 1), Value::new(0.3).unwrap());
        assert_eq!(format!("{used:?}"), format!("{fresh:?}"));
        // Including the degenerate pend = 0 case, which decides instantly.
        let p = Params::new(3, 1, 1.0).unwrap();
        let mut node = Dac::new(p, Value::ZERO);
        assert!(node.reset_instance(Value::new(0.8).unwrap()));
        assert_eq!(node.output().unwrap().get(), 0.8);
    }

    #[test]
    fn name_and_pend_accessors() {
        let node = Dac::new(params(5, 1), Value::ZERO);
        assert_eq!(node.name(), "dac");
        assert_eq!(node.pend(), 2);
        let custom = Dac::with_pend(params(5, 1), Value::ZERO, 7);
        assert_eq!(custom.pend(), 7);
    }
}
