use std::fmt;

/// Streaming summary statistics (Welford's online algorithm): count, mean,
/// sample standard deviation, min, max.
///
/// ```
/// use adn_analysis::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (a NaN observation would silently poison every later
    /// statistic).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot add NaN to a summary");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 17.0) % 7.3).collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.37).collect();
        let (a, b) = xs.split_at(17);
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let whole: Summary = xs.iter().copied().collect();
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn extend_works() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
