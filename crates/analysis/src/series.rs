//! Convergence-series post-processing.
//!
//! The experiments compare *measured* per-phase contraction ratios against
//! the paper's theoretical rates (1/2 for DAC, `1 − 2⁻ⁿ` for DBAC). These
//! helpers aggregate ratio series and compute the closed-form references.

/// Geometric mean of a series of positive ratios — the natural average for
/// multiplicative contraction factors. Returns `None` for an empty series.
///
/// # Panics
///
/// Panics if any ratio is non-positive.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    let log_sum: f64 = ratios
        .iter()
        .map(|&r| {
            assert!(r > 0.0, "ratios must be positive, got {r}");
            r.ln()
        })
        .sum();
    Some((log_sum / ratios.len() as f64).exp())
}

/// Effective per-phase rate of a whole execution: the `p`-th root of the
/// total range reduction across `p` phases. More robust than averaging
/// noisy per-phase ratios. Returns `None` when fewer than two phases or a
/// zero initial range.
pub fn effective_rate(phase_ranges: &[f64]) -> Option<f64> {
    if phase_ranges.len() < 2 {
        return None;
    }
    let first = phase_ranges[0];
    let last = *phase_ranges.last().expect("len >= 2");
    if first <= 0.0 || last <= 0.0 {
        return None;
    }
    let p = (phase_ranges.len() - 1) as f64;
    Some((last / first).powf(1.0 / p))
}

/// Number of phases theory predicts to shrink `initial_range` below `eps`
/// at the given `rate` — the generalized Eq. (2)/(6) with an arbitrary
/// starting range.
pub fn phases_to_eps(initial_range: f64, eps: f64, rate: f64) -> u64 {
    assert!(rate > 0.0 && rate < 1.0, "rate must be in (0, 1)");
    assert!(eps > 0.0, "eps must be positive");
    if initial_range <= eps {
        return 0;
    }
    ((eps / initial_range).ln() / rate.ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), None);
        let g = geometric_mean(&[0.25, 1.0]).unwrap();
        assert!((g - 0.5).abs() < 1e-12);
        let g = geometric_mean(&[0.5, 0.5, 0.5]).unwrap();
        assert!((g - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[0.0]);
    }

    #[test]
    fn effective_rate_matches_uniform_decay() {
        // 1, 0.5, 0.25, 0.125 -> rate 0.5.
        let r = effective_rate(&[1.0, 0.5, 0.25, 0.125]).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effective_rate_degenerate_cases() {
        assert_eq!(effective_rate(&[1.0]), None);
        assert_eq!(effective_rate(&[0.0, 0.0]), None);
        assert_eq!(effective_rate(&[1.0, 0.0]), None);
    }

    #[test]
    fn phases_to_eps_matches_eq2() {
        // range 1, eps 1e-3, rate 1/2 -> 10 phases.
        assert_eq!(phases_to_eps(1.0, 1e-3, 0.5), 10);
        // Already converged.
        assert_eq!(phases_to_eps(0.01, 0.1, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn phases_to_eps_validates_rate() {
        phases_to_eps(1.0, 0.1, 1.0);
    }
}
