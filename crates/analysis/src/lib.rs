//! Statistics and reporting for the experiment harness.
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford), the unit of
//!   every aggregated measurement;
//! * [`Table`] — fixed-width text tables, the output format of the
//!   `exp_*` binaries and of EXPERIMENTS.md;
//! * [`series`] — helpers for convergence-series post-processing
//!   (geometric means of contraction ratios, theoretical references).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod histogram;
pub mod series;
mod stats;
mod table;

pub use histogram::Histogram;
pub use stats::Summary;
pub use table::{fmt_num, Table};
