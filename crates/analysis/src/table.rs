use std::fmt;

/// A fixed-width text table: the output format of every experiment binary.
///
/// Columns are sized to their widest cell; numeric-looking cells are
/// right-aligned, text left-aligned. Rendered with a header rule, suitable
/// for pasting into EXPERIMENTS.md as-is.
///
/// ```
/// use adn_analysis::Table;
///
/// let mut t = Table::new(["n", "rounds"]);
/// t.row(["5", "10"]);
/// t.row(["15", "12"]);
/// let s = t.to_string();
/// assert!(s.contains("n"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

fn looks_numeric(s: &str) -> bool {
    let t = s.trim();
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | '%' | 'x'))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        // Header.
        for (i, (h, w)) in self.header.iter().zip(&widths).enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:<w$}")?;
        }
        writeln!(f)?;
        // Rule.
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        // Rows.
        for row in &self.rows {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if looks_numeric(cell) {
                    write!(f, "{cell:>w$}")?;
                } else {
                    write!(f, "{cell:<w$}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells: scientific for tiny/huge
/// magnitudes, fixed otherwise.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-3 || x.abs() >= 1e6 {
        format!("{x:.2e}")
    } else if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "20000"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
    }

    #[test]
    fn numeric_cells_right_aligned() {
        let mut t = Table::new(["x"]);
        t.row(["7"]);
        t.row(["12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("    7"), "{s:?}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fmt_num_choices() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.5), "0.5000");
        assert_eq!(fmt_num(1e-6), "1.00e-6");
        assert_eq!(fmt_num(2.5e7), "2.50e7");
    }

    #[test]
    fn looks_numeric_cases() {
        assert!(looks_numeric("123"));
        assert!(looks_numeric("-0.5"));
        assert!(looks_numeric("1.2e-3"));
        assert!(!looks_numeric("abc"));
        assert!(!looks_numeric(""));
    }
}
