//! Fixed-bucket histograms and exact percentiles for experiment reports.

use std::fmt;

/// A histogram over a fixed range with equal-width buckets, plus an exact
/// sample store for percentile queries (experiment sample counts are small,
/// so keeping the samples is cheaper than approximating).
///
/// ```
/// use adn_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 2.0, 2.5, 7.0, 9.9, 12.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bucket_counts(), &[1, 2, 0, 1, 1]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.percentile(50.0), Some(2.5));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, either bound is not finite, or
    /// `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be below hi");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            samples: Vec::new(),
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot add NaN");
        self.samples.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact percentile by the nearest-rank method (`p` in `[0, 100]`);
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// The median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Renders a one-line-per-bucket ASCII bar chart, scaled to
    /// `max_width` characters.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let bar = "#".repeat(
                (c as usize * max_width)
                    .div_ceil(peak as usize)
                    .min(max_width),
            );
            let from = self.lo + i as f64 * width;
            out.push_str(&format!(
                "[{:>9.3}, {:>9.3})  {:>6}  {}\n",
                from,
                from + width,
                c,
                bar
            ));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow:  {}\n", self.overflow));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(40))
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_correct() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.0, 0.24, 0.25, 0.5, 0.99]);
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-0.1, 1.0, 1.5]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.extend((1..=100).map(|i| i as f64));
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(95.0), Some(95.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.median(), Some(50.0));
    }

    #[test]
    fn empty_percentile_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        Histogram::new(0.0, 1.0, 2).percentile(101.0);
    }

    #[test]
    fn render_shows_bars_and_flows() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5, 5.0]);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.contains("overflow:  1"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn bad_bounds_rejected() {
        Histogram::new(1.0, 1.0, 2);
    }
}
