use std::fmt;

use adn_types::Message;

/// Cumulative traffic meter for one execution.
///
/// The paper bounds each link to one `O(log n)`-bit message per round
/// (§II-A) and discusses trading bandwidth for convergence rate via
/// piggybacking (§VII). `Traffic` counts delivered messages and bits so
/// experiments can report both sides of that trade-off. One "delivery" is
/// one sender→receiver link firing in one round; a piggybacked batch of
/// `k` messages on one link counts as one delivery of `k * 128` bits.
///
/// ```
/// use adn_net::Traffic;
///
/// let mut t = Traffic::default();
/// t.record_delivery(1); // plain DAC/DBAC message
/// t.record_delivery(3); // piggybacked batch of 3
/// assert_eq!(t.deliveries(), 2);
/// assert_eq!(t.messages(), 4);
/// assert_eq!(t.bits(), 4 * 128);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    deliveries: u64,
    messages: u64,
    bits: u64,
    max_batch: u64,
}

impl Traffic {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        Traffic::default()
    }

    /// Records one link firing with a batch of `batch_len` messages.
    ///
    /// All counters saturate at `u64::MAX` instead of wrapping: a
    /// 100 000-node run delivers ~5·10⁹ links *per round*, so the
    /// `links · batch · 128` bit product is the first place a silent
    /// wraparound would corrupt an experiment's report.
    pub fn record_delivery(&mut self, batch_len: usize) {
        let k = batch_len as u64;
        self.deliveries = self.deliveries.saturating_add(1);
        self.messages = self.messages.saturating_add(k);
        self.bits = self
            .bits
            .saturating_add(k.saturating_mul(Message::WIRE_BITS));
        self.max_batch = self.max_batch.max(k);
    }

    /// Records `links` simultaneous link firings that each carried the
    /// same batch of `batch_len` messages — the sender-major bulk form of
    /// [`Traffic::record_delivery`] used by the columnar delivery plane,
    /// where one broadcast reaches a popcounted set of receivers at once.
    /// Equivalent to calling `record_delivery(batch_len)` `links` times.
    /// Saturates like [`Traffic::record_delivery`].
    pub fn record_uniform_deliveries(&mut self, links: u64, batch_len: usize) {
        if links == 0 {
            return;
        }
        let k = batch_len as u64;
        self.deliveries = self.deliveries.saturating_add(links);
        self.messages = self.messages.saturating_add(links.saturating_mul(k));
        self.bits = self
            .bits
            .saturating_add(links.saturating_mul(k).saturating_mul(Message::WIRE_BITS));
        self.max_batch = self.max_batch.max(k);
    }

    /// Number of link-round firings (one per delivered batch).
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Total individual messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bits delivered (`messages * 128`).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Largest batch observed on a single link in a single round — the
    /// per-link bandwidth requirement of the execution.
    pub fn max_batch(&self) -> u64 {
        self.max_batch
    }

    /// Largest per-link per-round bits, i.e. `max_batch * 128`.
    pub fn peak_link_bits(&self) -> u64 {
        self.max_batch * Message::WIRE_BITS
    }

    /// Merges another meter into this one (counters add saturating,
    /// peaks max) — also how the sharded delivery plane folds its
    /// per-shard meters back together in shard order.
    pub fn merge(&mut self, other: &Traffic) {
        self.deliveries = self.deliveries.saturating_add(other.deliveries);
        self.messages = self.messages.saturating_add(other.messages);
        self.bits = self.bits.saturating_add(other.bits);
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} deliveries, {} msgs, {} bits (peak link {} bits/round)",
            self.deliveries,
            self.messages,
            self.bits,
            self.peak_link_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Traffic::new();
        t.record_delivery(1);
        t.record_delivery(1);
        t.record_delivery(5);
        assert_eq!(t.deliveries(), 3);
        assert_eq!(t.messages(), 7);
        assert_eq!(t.bits(), 7 * 128);
        assert_eq!(t.max_batch(), 5);
        assert_eq!(t.peak_link_bits(), 5 * 128);
    }

    #[test]
    fn empty_batch_counts_delivery_only() {
        let mut t = Traffic::new();
        t.record_delivery(0);
        assert_eq!(t.deliveries(), 1);
        assert_eq!(t.messages(), 0);
        assert_eq!(t.bits(), 0);
    }

    #[test]
    fn uniform_deliveries_match_repeated_singles() {
        let mut bulk = Traffic::new();
        bulk.record_uniform_deliveries(5, 2);
        bulk.record_uniform_deliveries(0, 9); // no links: must not touch peaks
        let mut singles = Traffic::new();
        for _ in 0..5 {
            singles.record_delivery(2);
        }
        assert_eq!(bulk, singles);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = Traffic::new();
        a.record_delivery(2);
        let mut b = Traffic::new();
        b.record_delivery(4);
        a.merge(&b);
        assert_eq!(a.deliveries(), 2);
        assert_eq!(a.messages(), 6);
        assert_eq!(a.max_batch(), 4);
    }

    #[test]
    fn counters_saturate_at_the_boundary_instead_of_wrapping() {
        let mut t = Traffic::new();
        // One bulk record already past any realistic scale: the bit
        // product alone overflows u64 by a factor of ~128.
        t.record_uniform_deliveries(u64::MAX / 2, 3);
        assert_eq!(t.bits(), u64::MAX, "bits must pin, not wrap");
        let messages_before = t.messages();
        t.record_uniform_deliveries(u64::MAX / 2, 3);
        assert!(t.messages() >= messages_before, "no wraparound");
        assert_eq!(t.deliveries(), u64::MAX - 1);
        t.record_delivery(1);
        t.record_delivery(1);
        assert_eq!(t.deliveries(), u64::MAX, "per-link adds saturate too");
        let mut merged = Traffic::new();
        merged.record_delivery(1);
        merged.merge(&t);
        assert_eq!(merged.deliveries(), u64::MAX, "merge saturates");
    }

    #[test]
    fn display_mentions_bits() {
        let mut t = Traffic::new();
        t.record_delivery(1);
        assert!(t.to_string().contains("128 bits"));
    }
}
