//! Anonymous network substrate: port numbering and traffic accounting.
//!
//! The paper's nodes have no identities; what they *do* have is a static,
//! private **port numbering** (§II-A): at each receiver `i` there is a
//! bijection `P_i : V → {0, ..., n-1}` assigning a local port to every
//! potential sender. Two receivers may map the same sender to different
//! ports, so ports cannot be pooled into global IDs, but one receiver can
//! distinguish and deduplicate its senders — exactly what DAC's bit vector
//! `R_i` and DBAC's `R_i` rely on. The substrate also guarantees reliable
//! self-delivery (a node can always send a message to itself).
//!
//! [`RoundBuffers`] is the round engine's reusable memory arena: per-node
//! broadcast batches, state snapshots, and the chosen/realized edge sets,
//! persisted across rounds so the steady-state message plane never
//! allocates.
//! [`codec`] provides the concrete byte encoding (quantized fixed-point
//! value + varint phase) that makes the `O(log n)` bound measurable.
//! [`PortNumbering`] materializes all `n` bijections (identity for tests,
//! seeded-random for experiments — algorithms must work under any
//! numbering, and the tests check invariance). [`Traffic`] meters messages
//! and bits so experiments E10/E13 can report bandwidth, implementing the
//! paper's `O(log n)`-bits-per-link-per-round accounting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod buffers;
pub mod codec;
mod ports;
mod traffic;

pub use buffers::{RoundBuffers, SenderClass};
pub use ports::PortNumbering;
pub use traffic::Traffic;
