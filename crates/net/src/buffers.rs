//! The round engine's reusable memory arena.
//!
//! A synchronous round touches `O(n²)` messages; doing that with per-round
//! allocations (one `Vec<Message>` per broadcaster, fresh snapshot arrays,
//! a fresh realized edge set, per-receiver in-neighbor lists, and a clone
//! of every delivered batch) dominates the simulator's runtime long before
//! the algorithms do. [`RoundBuffers`] owns every per-round buffer once,
//! for the lifetime of a simulation; each round begins with
//! [`RoundBuffers::begin_round`], which *clears* (capacity-preserving)
//! instead of reallocating. Combined with `Algorithm::broadcast_into`,
//! `ByzantineStrategy::messages_into`, and `Adversary::edges_into`, the
//! steady-state message plane performs no heap allocation at all.
//!
//! Fields are public by design: the engine needs simultaneous disjoint
//! borrows (e.g. an algorithm writing into its batch while the snapshot
//! arrays are read), which accessor methods would forbid.

use adn_graph::{EdgeSet, NodeSet};
use adn_types::{Batch, NodeId, Phase, Value};

/// What a sender contributes to deliveries this round — computed **once**
/// per sender per round, so the delivery plane's inner (sender, receiver)
/// loop reads one byte instead of re-deriving "Byzantine? crashed?
/// staged a batch?" per link.
///
/// The classes partition the senders by delivery behavior:
///
/// * [`Silent`](SenderClass::Silent) links deliver nothing and are skipped
///   wholesale (masked out of the word walk);
/// * [`Present`](SenderClass::Present) links always deliver the sender's
///   staged batch — the fast path, no per-receiver checks at all;
/// * [`Partial`](SenderClass::Partial) senders crash *this* round with a
///   per-receiver survivor set, so each link still consults
///   `CrashSchedule::delivers`;
/// * [`Byzantine`](SenderClass::Byzantine) senders fabricate per
///   destination (possibly nothing — the strategy decides link by link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SenderClass {
    /// Delivers nothing this round: Byzantine-free slot with no staged
    /// batch (crash-silent), the default before classification.
    #[default]
    Silent,
    /// Non-Byzantine with a staged batch that reaches every chosen
    /// receiver.
    Present,
    /// Non-Byzantine, staged a batch, but crashing this round with a
    /// partial survivor set: per-receiver delivery checks required.
    Partial,
    /// Byzantine: per-destination fabrication via
    /// `ByzantineStrategy::messages_into`.
    Byzantine,
}

/// Per-round scratch memory, persisted across rounds by the engine.
///
/// ```
/// use adn_net::RoundBuffers;
/// use adn_types::{Message, Phase, Value};
///
/// let mut buffers = RoundBuffers::new(3);
/// buffers.begin_round();
/// buffers.batches[0].push(Message::new(Value::HALF, Phase::ZERO));
/// buffers.present[0] = true;
/// let caps = buffers.batch_capacities();
/// buffers.begin_round(); // everything cleared, nothing freed
/// assert!(buffers.batches[0].is_empty());
/// assert!(!buffers.present[0]);
/// assert_eq!(buffers.batch_capacities(), caps);
/// ```
#[derive(Debug, Clone)]
pub struct RoundBuffers {
    n: usize,
    /// One broadcast batch per node, refilled via
    /// `Algorithm::broadcast_into` each round.
    pub batches: Vec<Batch>,
    /// `present[i]` — whether node `i` staged a broadcast this round
    /// (crashed-silent and Byzantine slots stay `false`).
    pub present: Vec<bool>,
    /// Scratch batch for per-destination Byzantine fabrications
    /// (`ByzantineStrategy::messages_into`); one suffices because
    /// fabrications are consumed delivery by delivery.
    pub byz_scratch: Batch,
    /// Start-of-round phase snapshot (Byzantine slots hold the default).
    pub phases: Vec<Phase>,
    /// Start-of-round value snapshot (Byzantine slots hold the default).
    pub values: Vec<Value>,
    /// Nodes that transmit this round.
    pub deliverers: NodeSet,
    /// Non-crashed, non-Byzantine nodes this round.
    pub honest: NodeSet,
    /// The adversary's chosen links `E(t)`, filled via
    /// `Adversary::edges_into`.
    pub chosen: EdgeSet,
    /// The realized delivery graph (chosen links whose sender actually
    /// delivered something).
    pub realized: EdgeSet,
    /// The round's shared sender permutation for the non-ascending
    /// delivery orders: every active sender id exactly once, in the order
    /// *every* receiver processes its deliveries this round (descending
    /// ids, or the round's seeded shuffle of all `n` ids with inactive
    /// senders masked out, order-preserving). Ascending-order rounds
    /// leave it empty — they walk the `chosen ∩ active` bitset words
    /// directly.
    pub perm: Vec<NodeId>,
    /// Scratch for the fault-free value trace.
    pub ff_values: Vec<Value>,
    /// Per-sender delivery class, computed once per round after broadcast
    /// staging (see [`SenderClass`]).
    pub classes: Vec<SenderClass>,
    /// Senders whose links can deliver anything this round (every class
    /// but [`SenderClass::Silent`]) — the word-level mask the delivery
    /// walk intersects with each receiver's chosen in-neighbors.
    pub active: NodeSet,
    /// The [`SenderClass::Present`] subset of `active`: senders whose
    /// chosen links *all* deliver, so their realized links are recorded
    /// with one word-parallel OR per receiver row instead of one insert
    /// per delivery.
    pub unconditional: NodeSet,
    /// Sender-major transpose of `chosen` (row `u` = out-neighbors of
    /// `u`), rebuilt by [`RoundBuffers::transpose_chosen`] each round the
    /// columnar algorithm plane runs. Every word is overwritten by the
    /// transpose, so `begin_round` does not clear it.
    pub chosen_out: EdgeSet,
    /// Per-sender receiver scratch of the plane path: `chosen ∩ honest`
    /// out-neighbors of the sender currently delivering.
    pub plane_receivers: NodeSet,
}

impl RoundBuffers {
    /// Allocates the arena for a system of `n` nodes.
    pub fn new(n: usize) -> Self {
        RoundBuffers {
            n,
            batches: (0..n).map(|_| Batch::with_capacity(1)).collect(),
            present: vec![false; n],
            byz_scratch: Batch::with_capacity(1),
            phases: vec![Phase::ZERO; n],
            values: vec![Value::HALF; n],
            deliverers: NodeSet::new(n),
            honest: NodeSet::new(n),
            chosen: EdgeSet::empty(n),
            realized: EdgeSet::empty(n),
            perm: Vec::with_capacity(n),
            ff_values: Vec::with_capacity(n),
            classes: vec![SenderClass::Silent; n],
            active: NodeSet::new(n),
            unconditional: NodeSet::new(n),
            chosen_out: EdgeSet::empty(n),
            plane_receivers: NodeSet::new(n),
        }
    }

    /// Allocates the arena for a **sparse-path** simulation of `n` nodes:
    /// every dense `O(n²)` edge structure (`chosen`, `chosen_out`,
    /// `plane_receivers`, and — unless the run records its schedule —
    /// `realized`) is left at size zero, so the arena is `O(n)` and a
    /// 100 000-node run does not pay three 1.25 GB bitmaps it never
    /// reads. The sparse engine keeps the round's links in a
    /// `LinkPlane` instead and must not touch the zero-sized fields
    /// (`begin_round` still clears them, which is a no-op).
    ///
    /// `realized` stays full-size iff `record_schedule` — the recorded
    /// schedule is a sequence of dense `EdgeSet`s, so recording runs
    /// (the equivalence fuzz at small `n`) still materialize realized
    /// links densely.
    pub fn sparse(n: usize, record_schedule: bool) -> Self {
        RoundBuffers {
            realized: EdgeSet::empty(if record_schedule { n } else { 0 }),
            chosen: EdgeSet::empty(0),
            chosen_out: EdgeSet::empty(0),
            plane_receivers: NodeSet::new(0),
            ..RoundBuffers::new(n)
        }
    }

    /// Rebuilds the sender-major view of this round's chosen links:
    /// `chosen_out` becomes the transpose of `chosen` (one blocked
    /// bit-matrix transpose, no allocation).
    pub fn transpose_chosen(&mut self) {
        self.chosen.transpose_into(&mut self.chosen_out);
    }

    /// The system size this arena serves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resets every buffer for the next round, preserving capacity.
    ///
    /// Snapshot arrays are reset to their defaults (`Phase::ZERO`,
    /// `Value::HALF`) so slots without a state machine — Byzantine nodes —
    /// read the same values every round rather than stale data.
    pub fn begin_round(&mut self) {
        for b in &mut self.batches {
            b.clear();
        }
        self.present.fill(false);
        self.byz_scratch.clear();
        self.phases.fill(Phase::ZERO);
        self.values.fill(Value::HALF);
        self.deliverers.clear();
        self.honest.clear();
        self.chosen.clear();
        self.realized.clear();
        self.perm.clear();
        self.ff_values.clear();
        self.classes.fill(SenderClass::Silent);
        self.active.clear();
        self.unconditional.clear();
    }

    /// Current capacity of every per-node batch, for reuse assertions in
    /// tests: once warmed up, steady-state rounds must not change these.
    pub fn batch_capacities(&self) -> Vec<usize> {
        self.batches.iter().map(Batch::capacity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_types::Message;

    #[test]
    fn begin_round_clears_everything_and_keeps_capacity() {
        let mut b = RoundBuffers::new(4);
        b.begin_round();
        b.batches[2].push(Message::new(Value::ONE, Phase::new(3)));
        b.present[2] = true;
        b.phases[2] = Phase::new(3);
        b.values[2] = Value::ONE;
        b.deliverers.insert(NodeId::new(2));
        b.honest.insert(NodeId::new(1));
        b.chosen.insert(NodeId::new(0), NodeId::new(1));
        b.realized.insert(NodeId::new(0), NodeId::new(1));
        b.perm.push(NodeId::new(0));
        b.ff_values.push(Value::ONE);
        b.classes[1] = SenderClass::Byzantine;
        b.active.insert(NodeId::new(1));

        let caps = b.batch_capacities();
        b.begin_round();

        assert!(b.batches[2].is_empty());
        assert!(!b.present[2]);
        assert_eq!(b.phases[2], Phase::ZERO);
        assert_eq!(b.values[2], Value::HALF);
        assert!(b.deliverers.is_empty());
        assert!(b.honest.is_empty());
        assert_eq!(b.chosen.edge_count(), 0);
        assert_eq!(b.realized.edge_count(), 0);
        assert!(b.perm.is_empty());
        assert!(b.ff_values.is_empty());
        assert_eq!(b.classes[1], SenderClass::Silent);
        assert!(b.active.is_empty());
        assert_eq!(b.batch_capacities(), caps, "clear must not free");
    }

    #[test]
    fn sparse_arena_skips_dense_edge_structures() {
        let mut b = RoundBuffers::sparse(100, false);
        assert_eq!(b.n(), 100);
        assert_eq!(b.batches.len(), 100);
        assert_eq!(b.chosen.n(), 0);
        assert_eq!(b.chosen_out.n(), 0);
        assert_eq!(b.realized.n(), 0);
        b.begin_round(); // clearing the zero-sized structures is a no-op
        let with_schedule = RoundBuffers::sparse(100, true);
        assert_eq!(with_schedule.realized.n(), 100, "recording needs realized");
        assert_eq!(with_schedule.chosen.n(), 0);
    }

    #[test]
    fn arena_dimensions_match_n() {
        let b = RoundBuffers::new(7);
        assert_eq!(b.n(), 7);
        assert_eq!(b.batches.len(), 7);
        assert_eq!(b.phases.len(), 7);
        assert_eq!(b.chosen.n(), 7);
    }
}
