//! Wire encoding for messages.
//!
//! The paper assumes each link carries `O(log n)` bits per round. Our
//! in-memory [`Message`] is a 64-bit value plus a 64-bit phase; this
//! module provides the actual byte encoding used when accounting for real
//! transmission sizes:
//!
//! * the **value** is quantized to `B` bits of fixed-point precision
//!   (values live in `[0, 1]`, so `B` bits give resolution `2⁻ᴮ`;
//!   an algorithm targeting ε-agreement needs only `B ≈ log₂(1/ε) + 1`
//!   bits — the encoding ties the paper's bandwidth assumption to ε);
//! * the **phase** is LEB128 varint-encoded (phases are small in practice,
//!   `pend` at most; a 1-byte phase covers the common case).
//!
//! Quantization is conservative (round toward the nearest grid point), so
//! an encode/decode round trip moves a value by at most `2⁻(ᴮ⁺¹)`; the
//! codec tests pin that bound. The simulator itself exchanges exact
//! values — the codec is the measurement instrument for E10-style
//! bandwidth accounting and a building block for users who want to run
//! the algorithms over real transports.

use adn_types::{Message, Phase, Value};

/// Fixed-point value precision in bits, `1..=52`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Precision(u8);

impl Precision {
    /// Creates a precision level.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 52` (the f64 mantissa bound).
    pub fn new(bits: u8) -> Self {
        assert!((1..=52).contains(&bits), "precision must be 1..=52 bits");
        Precision(bits)
    }

    /// Enough precision to support ε-agreement at the given ε:
    /// `⌈log₂(1/ε)⌉ + 1` bits (one guard bit below the target resolution).
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]`.
    pub fn for_eps(eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
        let bits = ((1.0 / eps).log2().ceil() as u8)
            .saturating_add(1)
            .clamp(1, 52);
        Precision(bits)
    }

    /// The number of bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// The grid resolution `2⁻ᴮ`.
    pub fn resolution(self) -> f64 {
        2.0_f64.powi(-(self.0 as i32))
    }

    fn levels(self) -> u64 {
        1u64 << self.0
    }
}

/// Quantizes a value to the precision grid (nearest grid point).
pub fn quantize(v: Value, precision: Precision) -> u64 {
    let levels = precision.levels();
    // Grid points i / levels for i in 0..=levels.
    let i = (v.get() * levels as f64).round() as u64;
    i.min(levels)
}

/// Reconstructs a value from its grid index.
///
/// # Panics
///
/// Panics if `index` exceeds the grid (`> 2^bits`).
pub fn dequantize(index: u64, precision: Precision) -> Value {
    let levels = precision.levels();
    assert!(index <= levels, "grid index {index} out of range");
    Value::saturating(index as f64 / levels as f64)
}

/// Snaps a value to its nearest grid point — the quantize/dequantize
/// round trip a `B`-bit wire applies to every transmitted value. Both
/// wire-format adaptors (the per-node `Quantized` wrapper and the
/// columnar `QuantizedPlane`, in `adn-sim`) route through this one
/// function, so the two execution paths compute bit-identical floats.
#[inline]
pub fn snap(v: Value, precision: Precision) -> Value {
    dequantize(quantize(v, precision), precision)
}

/// Encodes a message: varint phase, then the quantized value in
/// `ceil((bits+1)/8)` little-endian bytes (the `+1` accommodates the
/// inclusive top grid point `2^bits`).
pub fn encode(msg: Message, precision: Precision, out: &mut Vec<u8>) {
    encode_varint(msg.phase().as_u64(), out);
    let q = quantize(msg.value(), precision);
    let value_bytes = value_byte_len(precision);
    out.extend_from_slice(&q.to_le_bytes()[..value_bytes]);
}

/// Decodes one message from the front of `bytes`; returns the message and
/// the number of bytes consumed, or `None` if the buffer is truncated.
pub fn decode(bytes: &[u8], precision: Precision) -> Option<(Message, usize)> {
    let (phase, used) = decode_varint(bytes)?;
    let value_bytes = value_byte_len(precision);
    if bytes.len() < used + value_bytes {
        return None;
    }
    let mut raw = [0u8; 8];
    raw[..value_bytes].copy_from_slice(&bytes[used..used + value_bytes]);
    let q = u64::from_le_bytes(raw);
    if q > precision.levels() {
        return None;
    }
    let value = dequantize(q, precision);
    Some((Message::new(value, Phase::new(phase)), used + value_bytes))
}

/// The encoded size of a message in bits (varint phase + value field).
pub fn encoded_bits(msg: Message, precision: Precision) -> u64 {
    let mut buf = Vec::new();
    encode(msg, precision, &mut buf);
    buf.len() as u64 * 8
}

fn value_byte_len(precision: Precision) -> usize {
    (precision.bits() as usize + 1).div_ceil(8)
}

fn encode_varint(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn decode_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut x = 0u64;
    for (i, &b) in bytes.iter().enumerate().take(10) {
        x |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Some((x, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(v: f64) -> Value {
        Value::new(v).unwrap()
    }

    #[test]
    fn precision_constructors() {
        assert_eq!(Precision::new(10).bits(), 10);
        // eps = 1e-3 -> ceil(log2(1000)) + 1 = 11 bits.
        assert_eq!(Precision::for_eps(1e-3).bits(), 11);
        assert_eq!(Precision::for_eps(1.0).bits(), 1);
        assert!((Precision::new(4).resolution() - 0.0625).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_bounds_enforced() {
        Precision::new(0);
    }

    #[test]
    fn quantize_roundtrip_error_bound() {
        let p = Precision::new(8);
        let half_step = p.resolution() / 2.0;
        for i in 0..=1000 {
            let v = val(i as f64 / 1000.0);
            let q = quantize(v, p);
            let back = dequantize(q, p);
            assert!(
                v.distance(back) <= half_step + 1e-15,
                "{v} -> {back} error exceeds half a grid step"
            );
        }
    }

    #[test]
    fn snap_is_idempotent_and_on_grid() {
        let p = Precision::new(5); // grid step 1/32
        for i in 0..=100 {
            let v = val(i as f64 / 100.0);
            let s = snap(v, p);
            let scaled = s.get() * 32.0;
            assert!((scaled - scaled.round()).abs() < 1e-12, "{s} off-grid");
            assert_eq!(snap(s, p), s, "snap must be idempotent");
        }
    }

    #[test]
    fn quantize_endpoints_are_exact() {
        let p = Precision::new(6);
        assert_eq!(dequantize(quantize(Value::ZERO, p), p), Value::ZERO);
        assert_eq!(dequantize(quantize(Value::ONE, p), p), Value::ONE);
        assert_eq!(dequantize(quantize(Value::HALF, p), p), Value::HALF);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Precision::new(11);
        for (v, ph) in [(0.0, 0u64), (0.375, 3), (1.0, 300), (0.6181640625, 70_000)] {
            let msg = Message::new(val(v), Phase::new(ph));
            let mut buf = Vec::new();
            encode(msg, p, &mut buf);
            let (decoded, used) = decode(&buf, p).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(decoded.phase().as_u64(), ph);
            assert!(decoded.value().distance(val(v)) <= p.resolution());
        }
    }

    #[test]
    fn small_phase_small_message() {
        // Phase < 128 takes 1 byte; an 11-bit value takes 2 bytes: 24 bits
        // total — the concrete O(log n) the model assumes.
        let p = Precision::for_eps(1e-3);
        let msg = Message::new(Value::HALF, Phase::new(9));
        assert_eq!(encoded_bits(msg, p), 24);
    }

    #[test]
    fn truncated_buffers_rejected() {
        let p = Precision::new(16);
        let msg = Message::new(Value::HALF, Phase::new(5));
        let mut buf = Vec::new();
        encode(msg, p, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut], p).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn varint_known_values() {
        let mut buf = Vec::new();
        encode_varint(0, &mut buf);
        assert_eq!(buf, [0]);
        buf.clear();
        encode_varint(127, &mut buf);
        assert_eq!(buf, [127]);
        buf.clear();
        encode_varint(128, &mut buf);
        assert_eq!(buf, [0x80, 1]);
        assert_eq!(decode_varint(&[0x80, 1]), Some((128, 2)));
        buf.clear();
        encode_varint(u64::MAX, &mut buf);
        assert_eq!(decode_varint(&buf), Some((u64::MAX, 10)));
    }

    #[test]
    fn batch_of_messages_concatenates() {
        let p = Precision::new(8);
        let msgs = [
            Message::new(val(0.25), Phase::new(1)),
            Message::new(val(0.75), Phase::new(2)),
        ];
        let mut buf = Vec::new();
        for m in msgs {
            encode(m, p, &mut buf);
        }
        let (first, used) = decode(&buf, p).unwrap();
        let (second, used2) = decode(&buf[used..], p).unwrap();
        assert_eq!(used + used2, buf.len());
        assert_eq!(first.phase().as_u64(), 1);
        assert_eq!(second.phase().as_u64(), 2);
    }
}
