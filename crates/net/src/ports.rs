use std::fmt;
// audit: allow(layering) — OnceLock is lock-free lazy init, not threading; the transpose cache must be shareable across TrialPool workers
use std::sync::OnceLock;

use adn_types::rng::SplitMix64;
use adn_types::{NodeId, Port};

/// All `n` per-receiver port bijections of an execution.
///
/// `port_of(receiver, sender)` answers "on which local port does
/// `receiver` hear `sender`?". The numbering is static for the whole
/// execution (§II-A) and, in the random variant, different at every
/// receiver — so no two nodes need to agree on what "port 3" means.
///
/// A Byzantine sender cannot tamper with the numbering (the underlying
/// communication layer is authenticated in the paper's model), so the
/// substrate — not the sender — decides which port a fabricated message
/// arrives on.
///
/// Three representations, chosen by constructor:
///
/// * [`PortNumbering::random`] — an explicit `n × n` table of independent
///   uniform bijections, the strongest anonymity model. O(n²) memory, so
///   it is capped at [`PortNumbering::MAX_DENSE_N`] nodes;
/// * [`PortNumbering::rotation`] — per-receiver private rotations
///   `port = (sender + bᵣ) mod n`: still a different bijection at every
///   receiver, but O(n) memory and one add per lookup — the numbering
///   the sparse large-`n` delivery path uses;
/// * [`PortNumbering::identity`] — `port = sender` arithmetically, O(1)
///   memory; for tests that need predictable ports.
///
/// ```
/// use adn_net::PortNumbering;
/// use adn_types::NodeId;
///
/// let pn = PortNumbering::random(4, 42);
/// // Bijection: the four senders occupy four distinct ports at receiver 0.
/// let r = NodeId::new(0);
/// let mut ports: Vec<_> = (0..4).map(|s| pn.port_of(r, NodeId::new(s))).collect();
/// ports.sort();
/// ports.dedup();
/// assert_eq!(ports.len(), 4);
/// ```
#[derive(Clone)]
pub struct PortNumbering {
    n: usize,
    repr: Repr,
    /// The transposed dense table, sender-major:
    /// `transposed[sender * n + receiver] = port`. The columnar delivery
    /// plane walks one *sender's* out-neighbors at a time, so it reads
    /// this layout sequentially (`ports_to`) where a row-major table
    /// would stride by `n` per receiver. Built lazily on the first
    /// `ports_to` call — for any representation — so runs on the trait
    /// path and the sparse path never pay the `n²`-word table.
    transposed: OnceLock<Vec<Port>>,
}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    /// Flat row-major table: `map[receiver * n + sender] = port`.
    ///
    /// One indexed load per lookup — `port_of` sits in the delivery
    /// plane's inner loop, where the former `Vec<Vec<usize>>` cost a
    /// second pointer chase per delivered message.
    Table(Vec<Port>),
    /// `port = sender`, computed arithmetically.
    Identity,
    /// `port = (sender + offset[receiver]) mod n`, offsets seeded
    /// independently per receiver.
    Rotation(Vec<u32>),
}

/// The transposed table is a pure function of the representation, so
/// identity (and hashing-adjacent uses) compare `n` and the
/// representation only. Numberings built by different constructors
/// compare unequal even where their mappings happen to coincide.
impl PartialEq for PortNumbering {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.repr == other.repr
    }
}

impl Eq for PortNumbering {}

impl PortNumbering {
    /// Largest `n` for which the dense `n × n` representations — the
    /// [`PortNumbering::random`] table and the lazy
    /// [`PortNumbering::ports_to`] transpose — may be materialized
    /// (128 MB of ports at the cap). Larger systems must use
    /// [`PortNumbering::rotation`] (the simulation builder switches
    /// automatically) and the per-link arithmetic of
    /// [`PortNumbering::port_of`] on the sparse delivery path.
    pub const MAX_DENSE_N: usize = 1 << 12;

    /// The identity numbering: every receiver maps sender `j` to port `j`.
    ///
    /// Handy in unit tests where ports must be predictable. Correct
    /// algorithms may not exploit this (they cannot know it), and the
    /// integration tests run multiple numberings to check invariance.
    /// O(1) memory at any `n`.
    pub fn identity(n: usize) -> Self {
        PortNumbering {
            n,
            repr: Repr::Identity,
            transposed: OnceLock::new(),
        }
    }

    /// An independent uniformly random bijection at every receiver,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`PortNumbering::MAX_DENSE_N`] — the table
    /// is `n²` words, and failing fast with a pointer at
    /// [`PortNumbering::rotation`] beats an OOM abort deep inside an
    /// experiment.
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(
            n <= Self::MAX_DENSE_N,
            "PortNumbering::random(n = {n}) would allocate an n×n port table \
             (cap: {}); large systems should use PortNumbering::rotation",
            Self::MAX_DENSE_N
        );
        let mut rng = SplitMix64::new(seed);
        let mut map = Vec::with_capacity(n * n);
        for _ in 0..n {
            map.extend(rng.permutation(n).into_iter().map(Port::new));
        }
        PortNumbering {
            n,
            repr: Repr::Table(map),
            transposed: OnceLock::new(),
        }
    }

    /// A private rotation at every receiver: receiver `r` hears sender
    /// `s` on port `(s + bᵣ) mod n`, with the offsets `bᵣ` drawn
    /// independently from `seed`. Every receiver still has its own
    /// bijection — a node cannot translate its port numbers into anyone
    /// else's — but the whole numbering is `n` words instead of `n²`,
    /// which is what lets executions at `n = 100 000+` keep the paper's
    /// anonymity model without a multi-gigabyte table.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` does not fit the 32-bit offset encoding.
    pub fn rotation(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a rotation numbering needs at least one node");
        assert!(n < u32::MAX as usize, "n = {n} exceeds the 32-bit id space");
        let mut rng = SplitMix64::new(seed);
        let offsets = (0..n).map(|_| rng.next_index(n) as u32).collect();
        PortNumbering {
            n,
            repr: Repr::Rotation(offsets),
            transposed: OnceLock::new(),
        }
    }

    /// Number of nodes (and of ports per receiver).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The port on which `receiver` hears `sender`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn port_of(&self, receiver: NodeId, sender: NodeId) -> Port {
        assert!(sender.index() < self.n, "sender {sender} out of range");
        match &self.repr {
            Repr::Table(map) => map[receiver.index() * self.n + sender.index()],
            Repr::Identity => {
                assert!(
                    receiver.index() < self.n,
                    "receiver {receiver} out of range"
                );
                Port::new(sender.index())
            }
            Repr::Rotation(offsets) => {
                let p = sender.index() + offsets[receiver.index()] as usize;
                Port::new(if p >= self.n { p - self.n } else { p })
            }
        }
    }

    /// The port column of one sender: `ports_to(u)[v]` is the port on
    /// which receiver `v` hears `u` — `port_of(v, u)` for every `v`, laid
    /// out contiguously. The columnar delivery plane indexes this slice
    /// while walking a sender's out-neighbor bitset, so consecutive
    /// receivers hit consecutive memory. The whole transposed table is
    /// built once, on the first call, whatever the representation.
    ///
    /// # Panics
    ///
    /// Panics if the sender is out of range, or if `n` exceeds
    /// [`PortNumbering::MAX_DENSE_N`] — the transpose is an `n²`-word
    /// table, and large-`n` paths compute [`PortNumbering::port_of`] per
    /// link instead.
    #[inline]
    pub fn ports_to(&self, sender: NodeId) -> &[Port] {
        assert!(
            self.n <= Self::MAX_DENSE_N,
            "ports_to would materialize an n×n transpose at n = {} (cap: {}); \
             the sparse delivery path computes port_of per link instead",
            self.n,
            Self::MAX_DENSE_N
        );
        let transposed = self.transposed.get_or_init(|| {
            // audit: allow(alloc-reach) — one-time OnceLock fill; steady-state calls read the cached transpose
            let mut t = vec![Port::new(0); self.n * self.n];
            for r in 0..self.n {
                for s in 0..self.n {
                    t[s * self.n + r] = self.port_of(NodeId::new(r), NodeId::new(s));
                }
            }
            t
        });
        &transposed[sender.index() * self.n..(sender.index() + 1) * self.n]
    }

    /// Inverse lookup: which sender occupies `port` at `receiver`?
    /// (Analysis-only — real nodes have no access to this mapping.)
    ///
    /// # Panics
    ///
    /// Panics if the receiver or port is out of range.
    pub fn sender_at(&self, receiver: NodeId, port: Port) -> NodeId {
        match &self.repr {
            Repr::Table(map) => {
                let row = &map[receiver.index() * self.n..(receiver.index() + 1) * self.n];
                let sender = row
                    .iter()
                    .position(|&p| p == port)
                    .unwrap_or_else(|| panic!("port {port} out of range at receiver {receiver}"));
                NodeId::new(sender)
            }
            Repr::Identity => {
                assert!(
                    receiver.index() < self.n,
                    "receiver {receiver} out of range"
                );
                assert!(
                    port.index() < self.n,
                    "port {port} out of range at receiver {receiver}"
                );
                NodeId::new(port.index())
            }
            Repr::Rotation(offsets) => {
                assert!(
                    port.index() < self.n,
                    "port {port} out of range at receiver {receiver}"
                );
                let s = port.index() + self.n - offsets[receiver.index()] as usize;
                NodeId::new(if s >= self.n { s - self.n } else { s })
            }
        }
    }
}

impl fmt::Debug for PortNumbering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.repr {
            Repr::Table(_) => "random",
            Repr::Identity => "identity",
            Repr::Rotation(_) => "rotation",
        };
        write!(f, "PortNumbering(n={}, {kind})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_sender_to_same_port() {
        let pn = PortNumbering::identity(5);
        for r in NodeId::all(5) {
            for s in NodeId::all(5) {
                assert_eq!(pn.port_of(r, s).index(), s.index());
            }
        }
    }

    #[test]
    fn random_rows_are_bijections() {
        let pn = PortNumbering::random(17, 3);
        for r in NodeId::all(17) {
            let mut ports: Vec<usize> = NodeId::all(17).map(|s| pn.port_of(r, s).index()).collect();
            ports.sort_unstable();
            assert_eq!(ports, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rotation_rows_are_bijections() {
        let pn = PortNumbering::rotation(17, 3);
        for r in NodeId::all(17) {
            let mut ports: Vec<usize> = NodeId::all(17).map(|s| pn.port_of(r, s).index()).collect();
            ports.sort_unstable();
            assert_eq!(ports, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        assert_eq!(PortNumbering::random(8, 9), PortNumbering::random(8, 9));
        assert_ne!(PortNumbering::random(8, 9), PortNumbering::random(8, 10));
    }

    #[test]
    fn rotation_is_deterministic_in_seed() {
        assert_eq!(PortNumbering::rotation(8, 9), PortNumbering::rotation(8, 9));
        assert_ne!(
            PortNumbering::rotation(8, 9),
            PortNumbering::rotation(8, 10)
        );
    }

    #[test]
    fn receivers_generally_disagree() {
        // With n = 16 the chance that two independent random permutations
        // coincide is 1/16!; a disagreement must show up.
        let pn = PortNumbering::random(16, 7);
        let r0: Vec<usize> = NodeId::all(16)
            .map(|s| pn.port_of(NodeId::new(0), s).index())
            .collect();
        let r1: Vec<usize> = NodeId::all(16)
            .map(|s| pn.port_of(NodeId::new(1), s).index())
            .collect();
        assert_ne!(r0, r1, "private numberings should differ between receivers");
    }

    #[test]
    fn rotation_receivers_generally_disagree() {
        // 64 receivers with independent offsets in 0..64: all-equal has
        // probability 64⁻⁶³.
        let pn = PortNumbering::rotation(64, 7);
        let first: Vec<usize> = NodeId::all(64)
            .map(|r| pn.port_of(r, NodeId::new(0)).index())
            .collect();
        assert!(
            first.iter().any(|&p| p != first[0]),
            "private rotations should differ between receivers"
        );
    }

    #[test]
    fn ports_to_matches_port_of_for_every_repr() {
        for pn in [
            PortNumbering::random(9, 11),
            PortNumbering::rotation(9, 11),
            PortNumbering::identity(9),
        ] {
            for s in NodeId::all(9) {
                let col = pn.ports_to(s);
                assert_eq!(col.len(), 9);
                for r in NodeId::all(9) {
                    assert_eq!(col[r.index()], pn.port_of(r, s), "{pn:?}");
                }
            }
        }
    }

    #[test]
    fn sender_at_inverts_port_of_for_every_repr() {
        for pn in [
            PortNumbering::random(9, 11),
            PortNumbering::rotation(9, 11),
            PortNumbering::identity(9),
        ] {
            for r in NodeId::all(9) {
                for s in NodeId::all(9) {
                    let p = pn.port_of(r, s);
                    assert_eq!(pn.sender_at(r, p), s, "{pn:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sender_at_bad_port_panics() {
        let pn = PortNumbering::identity(3);
        pn.sender_at(NodeId::new(0), Port::new(3));
    }

    #[test]
    #[should_panic(expected = "PortNumbering::rotation")]
    fn random_past_dense_cap_fails_fast() {
        PortNumbering::random(PortNumbering::MAX_DENSE_N + 1, 1);
    }

    #[test]
    #[should_panic(expected = "port_of per link")]
    fn ports_to_past_dense_cap_fails_fast() {
        let pn = PortNumbering::rotation(PortNumbering::MAX_DENSE_N + 1, 1);
        pn.ports_to(NodeId::new(0));
    }

    #[test]
    fn rotation_is_arithmetic_at_large_n() {
        // The point of the representation: O(n) memory, so a 100k-node
        // numbering is constructible and consecutive senders land on
        // consecutive ports (mod n) at every receiver.
        let n = 100_000;
        let pn = PortNumbering::rotation(n, 5);
        let r = NodeId::new(12_345);
        let a = pn.port_of(r, NodeId::new(0)).index();
        let b = pn.port_of(r, NodeId::new(1)).index();
        assert_eq!(b, (a + 1) % n);
        assert_eq!(pn.sender_at(r, Port::new(a)), NodeId::new(0));
    }
}
