use std::fmt;
use std::sync::OnceLock;

use adn_types::rng::SplitMix64;
use adn_types::{NodeId, Port};

/// All `n` per-receiver port bijections of an execution.
///
/// `port_of(receiver, sender)` answers "on which local port does
/// `receiver` hear `sender`?". The numbering is static for the whole
/// execution (§II-A) and, in the random variant, different at every
/// receiver — so no two nodes need to agree on what "port 3" means.
///
/// A Byzantine sender cannot tamper with the numbering (the underlying
/// communication layer is authenticated in the paper's model), so the
/// substrate — not the sender — decides which port a fabricated message
/// arrives on.
///
/// ```
/// use adn_net::PortNumbering;
/// use adn_types::NodeId;
///
/// let pn = PortNumbering::random(4, 42);
/// // Bijection: the four senders occupy four distinct ports at receiver 0.
/// let r = NodeId::new(0);
/// let mut ports: Vec<_> = (0..4).map(|s| pn.port_of(r, NodeId::new(s))).collect();
/// ports.sort();
/// ports.dedup();
/// assert_eq!(ports.len(), 4);
/// ```
#[derive(Clone)]
pub struct PortNumbering {
    n: usize,
    /// Flat row-major table: `map[receiver * n + sender] = port`.
    ///
    /// One indexed load per lookup — `port_of` sits in the delivery
    /// plane's inner loop, where the former `Vec<Vec<usize>>` cost a
    /// second pointer chase per delivered message.
    map: Vec<Port>,
    /// The transposed table, sender-major:
    /// `transposed[sender * n + receiver] = port`. The columnar delivery
    /// plane walks one *sender's* out-neighbors at a time, so it reads
    /// this layout sequentially (`ports_to`) where the row-major table
    /// would stride by `n` per receiver. Built lazily on the first
    /// `ports_to` call: runs on the trait path never pay the extra
    /// `n²`-word table.
    transposed: OnceLock<Vec<Port>>,
}

/// The transposed table is a pure function of `map`, so identity (and
/// hashing-adjacent uses) compare the receiver-major table only.
impl PartialEq for PortNumbering {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.map == other.map
    }
}

impl Eq for PortNumbering {}

impl PortNumbering {
    /// The identity numbering: every receiver maps sender `j` to port `j`.
    ///
    /// Handy in unit tests where ports must be predictable. Correct
    /// algorithms may not exploit this (they cannot know it), and the
    /// integration tests run both numberings to check invariance.
    pub fn identity(n: usize) -> Self {
        PortNumbering {
            n,
            map: (0..n).flat_map(|_| (0..n).map(Port::new)).collect(),
            transposed: OnceLock::new(),
        }
    }

    /// An independent uniformly random bijection at every receiver,
    /// deterministic in `seed`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut map = Vec::with_capacity(n * n);
        for _ in 0..n {
            map.extend(rng.permutation(n).into_iter().map(Port::new));
        }
        PortNumbering {
            n,
            map,
            transposed: OnceLock::new(),
        }
    }

    /// Number of nodes (and of ports per receiver).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The port on which `receiver` hears `sender`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn port_of(&self, receiver: NodeId, sender: NodeId) -> Port {
        assert!(sender.index() < self.n, "sender {sender} out of range");
        self.map[receiver.index() * self.n + sender.index()]
    }

    /// The whole flat `receiver * n + sender → port` table, row-major by
    /// receiver — for consumers that want to hoist even the multiply out
    /// of their inner loop.
    pub fn table(&self) -> &[Port] {
        &self.map
    }

    /// The port column of one sender: `ports_to(u)[v]` is the port on
    /// which receiver `v` hears `u` — `port_of(v, u)` for every `v`, laid
    /// out contiguously. The columnar delivery plane indexes this slice
    /// while walking a sender's out-neighbor bitset, so consecutive
    /// receivers hit consecutive memory. The whole transposed table is
    /// built once, on the first call.
    ///
    /// # Panics
    ///
    /// Panics if the sender is out of range.
    #[inline]
    pub fn ports_to(&self, sender: NodeId) -> &[Port] {
        let transposed = self.transposed.get_or_init(|| {
            let mut t = vec![Port::new(0); self.n * self.n];
            for r in 0..self.n {
                for s in 0..self.n {
                    t[s * self.n + r] = self.map[r * self.n + s];
                }
            }
            t
        });
        &transposed[sender.index() * self.n..(sender.index() + 1) * self.n]
    }

    /// Inverse lookup: which sender occupies `port` at `receiver`?
    /// (Analysis-only — real nodes have no access to this mapping.)
    ///
    /// # Panics
    ///
    /// Panics if the receiver or port is out of range.
    pub fn sender_at(&self, receiver: NodeId, port: Port) -> NodeId {
        let row = &self.map[receiver.index() * self.n..(receiver.index() + 1) * self.n];
        let sender = row
            .iter()
            .position(|&p| p == port)
            .unwrap_or_else(|| panic!("port {port} out of range at receiver {receiver}"));
        NodeId::new(sender)
    }
}

impl fmt::Debug for PortNumbering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortNumbering(n={})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_sender_to_same_port() {
        let pn = PortNumbering::identity(5);
        for r in NodeId::all(5) {
            for s in NodeId::all(5) {
                assert_eq!(pn.port_of(r, s).index(), s.index());
            }
        }
    }

    #[test]
    fn random_rows_are_bijections() {
        let pn = PortNumbering::random(17, 3);
        for r in NodeId::all(17) {
            let mut ports: Vec<usize> = NodeId::all(17).map(|s| pn.port_of(r, s).index()).collect();
            ports.sort_unstable();
            assert_eq!(ports, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        assert_eq!(PortNumbering::random(8, 9), PortNumbering::random(8, 9));
        assert_ne!(PortNumbering::random(8, 9), PortNumbering::random(8, 10));
    }

    #[test]
    fn receivers_generally_disagree() {
        // With n = 16 the chance that two independent random permutations
        // coincide is 1/16!; a disagreement must show up.
        let pn = PortNumbering::random(16, 7);
        let r0: Vec<usize> = NodeId::all(16)
            .map(|s| pn.port_of(NodeId::new(0), s).index())
            .collect();
        let r1: Vec<usize> = NodeId::all(16)
            .map(|s| pn.port_of(NodeId::new(1), s).index())
            .collect();
        assert_ne!(r0, r1, "private numberings should differ between receivers");
    }

    #[test]
    fn ports_to_matches_port_of() {
        let pn = PortNumbering::random(9, 11);
        for s in NodeId::all(9) {
            let col = pn.ports_to(s);
            assert_eq!(col.len(), 9);
            for r in NodeId::all(9) {
                assert_eq!(col[r.index()], pn.port_of(r, s));
            }
        }
    }

    #[test]
    fn sender_at_inverts_port_of() {
        let pn = PortNumbering::random(9, 11);
        for r in NodeId::all(9) {
            for s in NodeId::all(9) {
                let p = pn.port_of(r, s);
                assert_eq!(pn.sender_at(r, p), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sender_at_bad_port_panics() {
        let pn = PortNumbering::identity(3);
        pn.sender_at(NodeId::new(0), Port::new(3));
    }
}
