//! Coordinated multi-node Byzantine attacks.
//!
//! Single-node strategies (see [`strategies`](crate::strategies)) act
//! independently; a real adversary coordinates its `f` nodes. This module
//! provides [`Coalition`], a shared plan that hands each member a
//! [`CoalitionMember`] strategy, plus the coordinated plans used in the
//! test matrix:
//!
//! * [`Plan::Straddle`] — the coalition spreads its values just inside the
//!   trim boundary: member `i` sends the `(i+1)`-th lowest honest value
//!   minus a nudge, trying to occupy DBAC's `R_low` list with
//!   *nearly*-legal values that bias the update downward without ever
//!   being trimmed as extremes.
//! * [`Plan::Sandwich`] — half the coalition pushes 0, half pushes 1,
//!   maximizing the spread of the trimmed lists.

use std::cell::RefCell;
use std::rc::Rc;

use adn_types::{Batch, Message, NodeId, Value};

use crate::{ByzContext, ByzantineStrategy};

/// The coordinated behavior of a coalition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Occupy the just-inside-the-trim band below the honest minimum.
    Straddle,
    /// Split the coalition between the two extremes.
    Sandwich,
}

/// Shared coalition state: the plan and the member roster.
#[derive(Debug)]
pub struct Coalition {
    plan: Plan,
    members: Vec<NodeId>,
}

impl Coalition {
    /// Creates a coalition executing `plan` with the given members, and
    /// returns one boxed strategy per member (in roster order).
    pub fn build(plan: Plan, members: Vec<NodeId>) -> Vec<(NodeId, Box<dyn ByzantineStrategy>)> {
        let shared = Rc::new(RefCell::new(Coalition {
            plan,
            members: members.clone(),
        }));
        members
            .into_iter()
            .enumerate()
            .map(|(rank, id)| {
                let strategy: Box<dyn ByzantineStrategy> = Box::new(CoalitionMember {
                    coalition: Rc::clone(&shared),
                    rank,
                });
                (id, strategy)
            })
            .collect()
    }

    fn value_for(&self, rank: usize, ctx: &ByzContext<'_>) -> Value {
        match self.plan {
            Plan::Straddle => {
                // The honest minimum, nudged down by rank-scaled amounts —
                // each member sits a little below the legitimate range.
                let honest_min = ctx
                    .values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !self.members.contains(&NodeId::new(*i)))
                    .map(|(_, v)| *v)
                    .min()
                    .unwrap_or(Value::HALF);
                honest_min + (-(0.02 * (rank as f64 + 1.0)))
            }
            Plan::Sandwich => {
                if rank.is_multiple_of(2) {
                    Value::ZERO
                } else {
                    Value::ONE
                }
            }
        }
    }
}

/// One member's view of the coalition (a [`ByzantineStrategy`]).
#[derive(Debug)]
pub struct CoalitionMember {
    coalition: Rc<RefCell<Coalition>>,
    rank: usize,
}

impl ByzantineStrategy for CoalitionMember {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        let value = self.coalition.borrow().value_for(self.rank, ctx);
        out.push(Message::new(value, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "coalition"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // The shared coalition plan is a pure function of the round
        // context and the member's fixed rank; nothing to re-seed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_types::{Params, Phase, Round};

    fn ctx<'a>(phases: &'a [Phase], values: &'a [Value]) -> ByzContext<'a> {
        ByzContext {
            round: Round::ZERO,
            self_id: NodeId::new(0),
            params: Params::new(phases.len().max(6), 1, 0.1).unwrap(),
            phases,
            values,
        }
    }

    #[test]
    fn sandwich_alternates_extremes() {
        let members = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let mut strategies = Coalition::build(Plan::Sandwich, members);
        let phases = [Phase::ZERO; 6];
        let values = [Value::HALF; 6];
        let c = ctx(&phases, &values);
        let got: Vec<Value> = strategies
            .iter_mut()
            .map(|(_, s)| s.messages_for(&c, NodeId::new(5))[0].value())
            .collect();
        assert_eq!(got, vec![Value::ZERO, Value::ONE, Value::ZERO]);
    }

    #[test]
    fn straddle_sits_below_honest_minimum() {
        let members = vec![NodeId::new(4), NodeId::new(5)];
        let mut strategies = Coalition::build(Plan::Straddle, members);
        let phases = [Phase::ZERO; 6];
        let values = [
            Value::new(0.4).unwrap(),
            Value::new(0.5).unwrap(),
            Value::new(0.6).unwrap(),
            Value::new(0.7).unwrap(),
            Value::ONE, // member values are excluded from the honest min
            Value::ONE,
        ];
        let c = ctx(&phases, &values);
        let v0 = strategies[0].1.messages_for(&c, NodeId::new(0))[0].value();
        let v1 = strategies[1].1.messages_for(&c, NodeId::new(0))[0].value();
        assert!((v0.get() - 0.38).abs() < 1e-12);
        assert!((v1.get() - 0.36).abs() < 1e-12);
        assert!(v1 < v0, "deeper rank sits lower");
    }

    #[test]
    fn members_share_one_plan() {
        let members = vec![NodeId::new(0), NodeId::new(1)];
        let strategies = Coalition::build(Plan::Straddle, members);
        assert_eq!(strategies.len(), 2);
        for (_, s) in &strategies {
            assert_eq!(s.name(), "coalition");
        }
    }
}
