//! Hybrid node-fault models for anonymous dynamic networks.
//!
//! The paper's model (§II-A) lets up to `f` nodes fail in one of two ways:
//!
//! * **Crash** — a node stops at any point, possibly mid-broadcast so that
//!   only some of its round-`t` messages are delivered. Modeled by
//!   [`CrashSchedule`].
//! * **Byzantine** — a node behaves arbitrarily. Crucially, under anonymity
//!   a Byzantine node can *equivocate*: send different messages to
//!   different receivers without detection, because port numberings are
//!   private (this powers the Theorem 10 lower bound). Modeled by
//!   [`ByzantineStrategy`] implementations that produce per-destination
//!   messages.
//!
//! The strategies in [`strategies`] cover the attacks used by the paper's
//! proofs and the experiments: the two-faced split of Theorem 10, extreme
//! value pulling, random noise, phase-forging (which demonstrates that DAC
//! is *not* Byzantine tolerant), silence, and stealthy mimicry.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod churn;
pub mod colluding;
mod crash;
pub mod strategies;

pub use churn::{ChurnPlan, DownKind};
pub use crash::{CrashSchedule, CrashSurvivors};

use std::fmt;

use adn_types::{Batch, Message, NodeId, Params, Phase, Round, Value};

/// Everything a Byzantine node gets to see when fabricating a message.
///
/// Byzantine nodes (and the message adversary) are allowed to inspect all
/// internal states at the start of the round (§I: the adversary "may use
/// nodes' internal states ... to make the choice"); we extend the same
/// omniscience to Byzantine senders, which only makes the adversary
/// stronger — the algorithms must tolerate it.
#[derive(Debug)]
pub struct ByzContext<'a> {
    /// The current round.
    pub round: Round,
    /// The Byzantine node's own identity (analysis-only; it cannot leak it
    /// to receivers, who see only a port).
    pub self_id: NodeId,
    /// System parameters.
    pub params: Params,
    /// Phase of every node at the start of the round (faulty entries are
    /// whatever the faulty node last held).
    pub phases: &'a [Phase],
    /// State value of every node at the start of the round.
    pub values: &'a [Value],
}

impl ByzContext<'_> {
    /// The highest phase any node currently holds — claiming it makes a
    /// fabricated message acceptable to every DBAC receiver.
    pub fn max_phase(&self) -> Phase {
        self.phases.iter().copied().max().unwrap_or(Phase::ZERO)
    }

    /// The phase of a specific receiver, so a fabricated message can be
    /// tailored to pass its `pj >= pi` check.
    pub fn phase_of(&self, node: NodeId) -> Phase {
        self.phases[node.index()]
    }
}

/// A Byzantine node's behavior: one (possibly different) message batch per
/// destination per round.
///
/// Leaving the batch empty means sending nothing to that destination in
/// that round. A batch with several messages models a (maliciously crafted)
/// piggybacked transmission.
pub trait ByzantineStrategy: fmt::Debug {
    /// Fabricates the messages this node sends to `dest` in the current
    /// round, appending them to `out`.
    ///
    /// The round engine passes `out` empty and reuses one scratch buffer
    /// for every fabrication of the round, so implementations must only
    /// append — never allocate their own vector — to keep the steady-state
    /// message plane allocation free.
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch);

    /// Convenience form of [`ByzantineStrategy::messages_into`] that
    /// allocates a fresh vector per call. Prefer `messages_into` on hot
    /// paths; this shim exists for tests and exploratory code.
    fn messages_for(&mut self, ctx: &ByzContext<'_>, dest: NodeId) -> Vec<Message> {
        let mut out = Batch::new();
        self.messages_into(ctx, dest, &mut out);
        out.into_vec()
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Resets per-instance state at the start of service instance
    /// `instance` (counting from 0; the service calls it for instance 0
    /// too). Stateful strategies (like [`strategies::RandomNoise`]) reseed
    /// their generators from the instance number here, so instance `k` of
    /// a service run fabricates byte-identically to a standalone run whose
    /// strategy also received `begin_instance(k)`. Stateless strategies
    /// keep the default no-op; single-instance runs never call this.
    fn begin_instance(&mut self, instance: u64) {
        let _ = instance;
    }

    /// Whether this node transmits at all. A non-transmitting Byzantine
    /// node (like [`strategies::Silent`]) cannot count toward anyone's
    /// dynaDegree — the guarantee-preserving adversaries must route around
    /// it, exactly as they route around crashed senders (DESIGN.md §5.1).
    fn transmits(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_max_phase() {
        let phases = [Phase::new(1), Phase::new(4), Phase::ZERO];
        let values = [Value::ZERO, Value::HALF, Value::ONE];
        let ctx = ByzContext {
            round: Round::ZERO,
            self_id: NodeId::new(2),
            params: Params::new(3, 1, 0.1).unwrap(),
            phases: &phases,
            values: &values,
        };
        assert_eq!(ctx.max_phase(), Phase::new(4));
        assert_eq!(ctx.phase_of(NodeId::new(0)), Phase::new(1));
    }
}
