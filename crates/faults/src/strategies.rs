//! Byzantine attack strategies.
//!
//! Each strategy implements [`ByzantineStrategy`]
//! and fabricates per-destination messages. The two-faced strategy is the
//! exact attack of the Theorem 10 necessity proof; the others exercise
//! DBAC's defenses from different angles and appear in experiments E07,
//! E08, and the test matrix.

use adn_types::rng::SplitMix64;
use adn_types::{Batch, Message, NodeId, Phase, Value};

use crate::{ByzContext, ByzantineStrategy};

/// The Theorem 10 equivocation attack: behave as if the input were
/// `low_value` toward destinations in the "low" group and `high_value`
/// toward everyone else.
///
/// Anonymity makes this undetectable: receivers cannot compare notes about
/// "who" sent what, because port numberings are private. The fabricated
/// phase always matches the receiver's own phase, so the message passes
/// both DAC's `pj = pi` check and DBAC's `pj >= pi` check.
#[derive(Debug, Clone)]
pub struct TwoFaced {
    /// Destinations with index below this bound receive `low_value`.
    pub split: usize,
    /// Value shown to the low group.
    pub low_value: Value,
    /// Value shown to the high group.
    pub high_value: Value,
}

impl TwoFaced {
    /// The canonical 0-vs-1 split used in the paper's proof.
    pub fn zero_one(split: usize) -> Self {
        TwoFaced {
            split,
            low_value: Value::ZERO,
            high_value: Value::ONE,
        }
    }
}

impl ByzantineStrategy for TwoFaced {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        let value = if dest.index() < self.split {
            self.low_value
        } else {
            self.high_value
        };
        out.push(Message::new(value, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "two-faced"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // Stateless across instances: every round's output is a pure
        // function of the context, so there is nothing to re-seed.
    }
}

/// Always sends one fixed extreme value (to every destination), tagged with
/// the receiver's phase so it is always accepted.
///
/// Tests DBAC's trimming: `f` such attackers must not drag outputs outside
/// the fault-free input hull (validity, Lemma 5).
#[derive(Debug, Clone)]
pub struct Extreme {
    /// The value pushed at every receiver.
    pub value: Value,
}

impl ByzantineStrategy for Extreme {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        out.push(Message::new(self.value, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "extreme"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // Stateless across instances: every round's output is a pure
        // function of the context, so there is nothing to re-seed.
    }
}

/// Sends independent uniform noise to every destination every round.
#[derive(Debug)]
pub struct RandomNoise {
    seed: u64,
    rng: SplitMix64,
}

impl RandomNoise {
    /// Creates a noise attacker with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomNoise {
            seed,
            rng: SplitMix64::new(seed),
        }
    }
}

impl ByzantineStrategy for RandomNoise {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        let v = Value::saturating(self.rng.next_f64());
        out.push(Message::new(v, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "random-noise"
    }

    fn begin_instance(&mut self, instance: u64) {
        // Instance 0 reseeds to the construction stream, so a service's
        // first instance matches a plain single-instance run byte for
        // byte; later instances draw from disjoint deterministic streams.
        self.rng = SplitMix64::new(self.seed ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

/// Claims a phase far in the future with an attacker-chosen value.
///
/// Against DAC this is devastating — the jump rule (Alg. 1 lines 5-8)
/// copies the fabricated state wholesale, destroying validity. DAC is a
/// *crash*-model algorithm; this strategy exists to demonstrate that
/// boundary (experiment E08 and the `dac_not_byzantine_tolerant` tests).
/// Against DBAC the forged value merely lands in the trimmed lists.
#[derive(Debug, Clone)]
pub struct PhaseForger {
    /// How many phases ahead of the current global maximum to claim.
    pub lead: u64,
    /// The value to inject.
    pub value: Value,
}

impl ByzantineStrategy for PhaseForger {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, _dest: NodeId, out: &mut Batch) {
        let forged = Phase::new(ctx.max_phase().as_u64() + self.lead);
        out.push(Message::new(self.value, forged));
    }

    fn name(&self) -> &'static str {
        "phase-forger"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // Stateless across instances: every round's output is a pure
        // function of the context, so there is nothing to re-seed.
    }
}

/// Sends nothing, ever. Equivalent to an initially-crashed node, but
/// counted against the Byzantine budget.
#[derive(Debug, Clone, Default)]
pub struct Silent;

impl ByzantineStrategy for Silent {
    fn messages_into(&mut self, _ctx: &ByzContext<'_>, _dest: NodeId, _out: &mut Batch) {}

    fn name(&self) -> &'static str {
        "silent"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // Stateless across instances: never transmits, nothing to re-seed.
    }

    fn transmits(&self) -> bool {
        false
    }
}

/// Stealthy strategy: sends the current *median* fault-free value with the
/// receiver's phase — indistinguishable from an honest-looking sender while
/// still counting toward quorums.
///
/// Useful as a control: a correct algorithm's outputs should be unaffected
/// (mimics stay within the honest hull), so any test failure under `Mimic`
/// points at quorum accounting rather than value trimming.
#[derive(Debug, Clone, Default)]
pub struct Mimic {
    /// Reusable scratch for the median computation.
    scratch: Vec<Value>,
}

impl ByzantineStrategy for Mimic {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        self.scratch.clear();
        self.scratch.extend_from_slice(ctx.values);
        self.scratch.sort();
        let median = self.scratch[self.scratch.len() / 2];
        out.push(Message::new(median, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "mimic"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // The median scratch is cleared at every use; dropping its
        // contents here just keeps instances observably independent.
        self.scratch.clear();
    }
}

/// Alternates between the two extremes per round (flip-flopping), tagged
/// with the receiver's phase. Exercises the per-phase deduplication: a
/// single port may only contribute once per phase no matter how wildly its
/// values swing.
#[derive(Debug, Clone, Default)]
pub struct FlipFlop;

impl ByzantineStrategy for FlipFlop {
    fn messages_into(&mut self, ctx: &ByzContext<'_>, dest: NodeId, out: &mut Batch) {
        let v = if ctx.round.as_u64().is_multiple_of(2) {
            Value::ZERO
        } else {
            Value::ONE
        };
        out.push(Message::new(v, ctx.phase_of(dest)));
    }

    fn name(&self) -> &'static str {
        "flip-flop"
    }

    fn begin_instance(&mut self, _instance: u64) {
        // Stateless across instances: every round's output is a pure
        // function of the context, so there is nothing to re-seed.
    }
}

/// Convenience constructor used by experiment configs: builds a boxed
/// strategy from a short name.
///
/// Recognized names: `two-faced` (split at n/2), `extreme-low`,
/// `extreme-high`, `random-noise`, `phase-forger`, `silent`, `mimic`,
/// `flip-flop`.
///
/// # Panics
///
/// Panics on an unrecognized name (experiment configs are static and a typo
/// should fail loudly).
pub fn by_name(name: &str, n: usize, seed: u64) -> Box<dyn ByzantineStrategy> {
    match name {
        "two-faced" => Box::new(TwoFaced::zero_one(n / 2)),
        "extreme-low" => Box::new(Extreme { value: Value::ZERO }),
        "extreme-high" => Box::new(Extreme { value: Value::ONE }),
        "random-noise" => Box::new(RandomNoise::new(seed)),
        "phase-forger" => Box::new(PhaseForger {
            lead: 1_000,
            value: Value::ONE,
        }),
        "silent" => Box::new(Silent),
        "mimic" => Box::new(Mimic::default()),
        "flip-flop" => Box::new(FlipFlop),
        other => panic!("unknown byzantine strategy: {other}"),
    }
}

/// The full list of strategy names accepted by [`by_name`], for test
/// matrices and CLI help.
pub const ALL_STRATEGY_NAMES: [&str; 8] = [
    "two-faced",
    "extreme-low",
    "extreme-high",
    "random-noise",
    "phase-forger",
    "silent",
    "mimic",
    "flip-flop",
];

#[cfg(test)]
mod tests {
    use super::*;
    use adn_types::{Params, Round};

    fn ctx<'a>(phases: &'a [Phase], values: &'a [Value]) -> ByzContext<'a> {
        ByzContext {
            round: Round::new(2),
            self_id: NodeId::new(0),
            params: Params::new(phases.len().max(2), 1, 0.1).unwrap(),
            phases,
            values,
        }
    }

    #[test]
    fn two_faced_splits_by_destination() {
        let phases = [Phase::ZERO; 4];
        let values = [Value::HALF; 4];
        let c = ctx(&phases, &values);
        let mut s = TwoFaced::zero_one(2);
        assert_eq!(s.messages_for(&c, NodeId::new(0))[0].value(), Value::ZERO);
        assert_eq!(s.messages_for(&c, NodeId::new(1))[0].value(), Value::ZERO);
        assert_eq!(s.messages_for(&c, NodeId::new(2))[0].value(), Value::ONE);
        assert_eq!(s.messages_for(&c, NodeId::new(3))[0].value(), Value::ONE);
    }

    #[test]
    fn two_faced_matches_receiver_phase() {
        let phases = [Phase::new(3), Phase::new(7)];
        let values = [Value::HALF; 2];
        let c = ctx(&phases, &values);
        let mut s = TwoFaced::zero_one(1);
        assert_eq!(s.messages_for(&c, NodeId::new(0))[0].phase(), Phase::new(3));
        assert_eq!(s.messages_for(&c, NodeId::new(1))[0].phase(), Phase::new(7));
    }

    #[test]
    fn extreme_is_constant() {
        let phases = [Phase::ZERO; 3];
        let values = [Value::HALF; 3];
        let c = ctx(&phases, &values);
        let mut s = Extreme { value: Value::ONE };
        for d in NodeId::all(3) {
            assert_eq!(s.messages_for(&c, d)[0].value(), Value::ONE);
        }
    }

    #[test]
    fn random_noise_is_seeded() {
        let phases = [Phase::ZERO; 2];
        let values = [Value::HALF; 2];
        let c = ctx(&phases, &values);
        let a = RandomNoise::new(5).messages_for(&c, NodeId::new(1));
        let b = RandomNoise::new(5).messages_for(&c, NodeId::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn phase_forger_leads_global_max() {
        let phases = [Phase::new(4), Phase::new(9)];
        let values = [Value::HALF; 2];
        let c = ctx(&phases, &values);
        let mut s = PhaseForger {
            lead: 100,
            value: Value::ZERO,
        };
        assert_eq!(
            s.messages_for(&c, NodeId::new(0))[0].phase(),
            Phase::new(109)
        );
    }

    #[test]
    fn silent_sends_nothing() {
        let phases = [Phase::ZERO];
        let values = [Value::HALF];
        let c = ctx(&phases, &values);
        assert!(Silent.messages_for(&c, NodeId::new(0)).is_empty());
    }

    #[test]
    fn mimic_sends_median() {
        let phases = [Phase::ZERO; 3];
        let values = [
            Value::new(0.1).unwrap(),
            Value::new(0.9).unwrap(),
            Value::new(0.4).unwrap(),
        ];
        let c = ctx(&phases, &values);
        let got = Mimic::default().messages_for(&c, NodeId::new(0));
        assert_eq!(got[0].value().get(), 0.4);
    }

    #[test]
    fn flip_flop_alternates() {
        let phases = [Phase::ZERO];
        let values = [Value::HALF];
        let even = ByzContext {
            round: Round::new(0),
            ..ctx(&phases, &values)
        };
        let odd = ByzContext {
            round: Round::new(1),
            ..ctx(&phases, &values)
        };
        let mut s = FlipFlop;
        assert_eq!(
            s.messages_for(&even, NodeId::new(0))[0].value(),
            Value::ZERO
        );
        assert_eq!(s.messages_for(&odd, NodeId::new(0))[0].value(), Value::ONE);
    }

    #[test]
    fn by_name_builds_all() {
        let phases = [Phase::ZERO; 6];
        let values = [Value::HALF; 6];
        let c = ctx(&phases, &values);
        for name in ALL_STRATEGY_NAMES {
            let mut s = by_name(name, 6, 1);
            assert!(!s.name().is_empty());
            // Every strategy must produce a well-formed (possibly empty)
            // batch for any destination.
            let batch = s.messages_for(&c, NodeId::new(3));
            assert!(batch.len() <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "unknown byzantine strategy")]
    fn by_name_rejects_typos() {
        by_name("two-facedd", 6, 1);
    }
}
