use adn_types::rng::SplitMix64;
use adn_types::{NodeId, Round};

use crate::{CrashSchedule, CrashSurvivors};

/// How a node goes down in a [`ChurnPlan`].
///
/// Mirrors [`CrashSurvivors`] but deliberately omits the `Subset` mode:
/// every kind here converts to a `CrashSurvivors` without allocating, so
/// [`ChurnPlan::slice_into`] can refresh a long-lived [`CrashSchedule`]
/// between instances on the service's allocation-free turnover path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DownKind {
    /// Graceful leave: the final round's broadcast completes in full
    /// ([`CrashSurvivors::All`]).
    Graceful,
    /// Abrupt crash: nothing is sent in the down round
    /// ([`CrashSurvivors::None`]).
    Abrupt,
    /// Mid-broadcast crash: each receiver keeps the final message with the
    /// given probability, deterministically in the seed
    /// ([`CrashSurvivors::Random`]).
    Flaky {
        /// Probability that each individual receiver still gets the final
        /// message.
        keep_probability: f64,
        /// Seed for the deterministic subset choice.
        seed: u64,
    },
}

impl DownKind {
    fn survivors(self) -> CrashSurvivors {
        match self {
            DownKind::Graceful => CrashSurvivors::All,
            DownKind::Abrupt => CrashSurvivors::None,
            DownKind::Flaky {
                keep_probability,
                seed,
            } => CrashSurvivors::Random {
                keep_probability,
                seed,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Transition {
    Down(DownKind),
    Up,
}

/// A per-node timeline of up/down transitions on one **global round axis**
/// spanning every instance of a service run.
///
/// [`CrashSchedule`] answers "when does each node crash, once" for a single
/// consensus instance. A `ChurnPlan` generalizes it to a long-lived
/// service: nodes **crash** (abruptly or mid-broadcast), **leave**
/// (gracefully), **recover** (rejoin with reset algorithm state and a fresh
/// input), **join** late, and may flap between up and down repeatedly via
/// the [`ChurnPlan::flap_periodic`] / [`ChurnPlan::flap_random`]
/// generators. Byzantine coalitions compose alongside: a Byzantine node
/// simply stays out of the plan (the service keeps it in the Byzantine set
/// for every instance), so crash-churn and equivocation mix freely.
///
/// **Recovery granularity.** Down events take effect at their exact global
/// round — the node performs its (possibly partial) final broadcast then
/// and is silent after, exactly like a [`CrashSchedule`] crash. Up events
/// take effect at the first *instance boundary* at or after their round: a
/// node cannot rejoin mid-instance, because rejoining means resetting its
/// algorithm state against a fresh input, which only happens when the
/// service re-seeds. [`ChurnPlan::slice_into`] encodes exactly these
/// semantics when it projects the plan onto one instance's crash schedule.
///
/// Per node, transitions must strictly alternate (down, up, down, ...)
/// with strictly increasing rounds — the builder methods enforce this, and
/// the slicer exploits it to answer boundary queries with one binary
/// search.
///
/// ```
/// use adn_faults::{ChurnPlan, CrashSchedule, DownKind};
/// use adn_types::{NodeId, Round};
///
/// let mut plan = ChurnPlan::new(4);
/// // Node 2 crashes at global round 5 and recovers at global round 9.
/// plan.crash(NodeId::new(2), Round::new(5), DownKind::Abrupt);
/// plan.recover(NodeId::new(2), Round::new(9));
///
/// // Instance starting at global round 0: node 2 crashes at relative 5.
/// let mut cs = CrashSchedule::new(4);
/// plan.slice_into(Round::ZERO, &mut cs);
/// assert!(cs.is_silent(NodeId::new(2), Round::new(5)));
///
/// // Instance starting at global round 7: node 2 is still down (its
/// // recovery round has not been reached) — crashed from relative 0.
/// plan.slice_into(Round::new(7), &mut cs);
/// assert!(cs.is_silent(NodeId::new(2), Round::ZERO));
///
/// // Instance starting at global round 10: node 2 has rejoined.
/// plan.slice_into(Round::new(10), &mut cs);
/// assert!(!cs.is_faulty(NodeId::new(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    initially_up: Vec<bool>,
    events: Vec<Vec<(Round, Transition)>>,
}

impl ChurnPlan {
    /// A plan in which every node is up forever, for a system of `n` nodes.
    pub fn new(n: usize) -> Self {
        ChurnPlan {
            initially_up: vec![true; n],
            events: vec![Vec::new(); n],
        }
    }

    /// Number of nodes this plan covers.
    pub fn n(&self) -> usize {
        self.initially_up.len()
    }

    /// The node's state after its last registered transition.
    fn last_state(&self, v: usize) -> bool {
        match self.events[v].last() {
            Some((_, Transition::Up)) => true,
            Some((_, Transition::Down(_))) => false,
            None => self.initially_up[v],
        }
    }

    /// The global round of the node's last registered transition, if any.
    fn last_round(&self, v: usize) -> Option<Round> {
        self.events[v].last().map(|(r, _)| *r)
    }

    fn push(&mut self, node: NodeId, at: Round, t: Transition) {
        let v = node.index();
        if let Some(last) = self.last_round(v) {
            assert!(
                last < at,
                "churn events for {node} must have strictly increasing rounds \
                 (last {last}, new {at})"
            );
        }
        self.events[v].push((at, t));
    }

    /// The node goes down at global round `at`: it performs the final
    /// (possibly partial, per `kind`) broadcast that round and is silent
    /// after, until a later [`ChurnPlan::recover`].
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range, already down at `at`, or `at`
    /// does not follow the node's previous transition.
    pub fn crash(&mut self, node: NodeId, at: Round, kind: DownKind) {
        assert!(
            self.last_state(node.index()),
            "cannot take {node} down at {at}: it is already down"
        );
        self.push(node, at, Transition::Down(kind));
    }

    /// The node leaves gracefully at global round `at` — its final
    /// broadcast completes in full ([`DownKind::Graceful`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`ChurnPlan::crash`].
    pub fn leave(&mut self, node: NodeId, at: Round) {
        self.crash(node, at, DownKind::Graceful);
    }

    /// The node comes back up: from the first instance boundary at or
    /// after global round `at`, it participates again with reset algorithm
    /// state and a fresh input.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range, already up, or `at` does not
    /// follow the node's previous transition.
    pub fn recover(&mut self, node: NodeId, at: Round) {
        assert!(
            !self.last_state(node.index()),
            "cannot bring {node} up at {at}: it is already up"
        );
        self.push(node, at, Transition::Up);
    }

    /// The node is absent from the start and joins at the first instance
    /// boundary at or after global round `at`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or already has churn events.
    pub fn join(&mut self, node: NodeId, at: Round) {
        let v = node.index();
        assert!(
            self.events[v].is_empty() && self.initially_up[v],
            "join must be {node}'s first churn event"
        );
        self.initially_up[v] = false;
        self.push(node, at, Transition::Up);
    }

    /// Periodic flapping: starting at `first_down`, the node goes down
    /// (per `kind`) for `down_len` rounds out of every `period`, repeating
    /// while the down round is below `horizon`. The final recovery is
    /// always registered, so the node ends the plan up.
    ///
    /// # Panics
    ///
    /// Panics if `down_len == 0`, `down_len >= period`, or the first down
    /// round does not follow the node's previous transition.
    pub fn flap_periodic(
        &mut self,
        node: NodeId,
        first_down: Round,
        down_len: u64,
        period: u64,
        kind: DownKind,
        horizon: Round,
    ) {
        assert!(down_len > 0, "down_len must be at least one round");
        assert!(
            down_len < period,
            "a flapping node must spend at least one round per period up \
             (down_len {down_len} >= period {period})"
        );
        let mut down = first_down.as_u64();
        while down < horizon.as_u64() {
            self.crash(node, Round::new(down), kind);
            self.recover(node, Round::new(down + down_len));
            down += period;
        }
    }

    /// Random flapping: a two-state Markov walk from the node's current
    /// state, one step per global round until `horizon`. While up, the
    /// node crashes ([`DownKind::Abrupt`]) with probability `p_down` each
    /// round; while down, it recovers with probability `p_up` each round.
    /// Deterministic in `seed` (mixed with the node id, so one seed drives
    /// a whole gallery of nodes independently).
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn flap_random(&mut self, node: NodeId, p_down: f64, p_up: f64, seed: u64, horizon: Round) {
        assert!((0.0..=1.0).contains(&p_down), "p_down must be in [0, 1]");
        assert!((0.0..=1.0).contains(&p_up), "p_up must be in [0, 1]");
        let v = node.index();
        let mut rng = SplitMix64::new(seed ^ ((v as u64) << 32));
        let mut up = self.last_state(v);
        let start = self.last_round(v).map_or(0, |r| r.as_u64() + 1);
        for r in start..horizon.as_u64() {
            if up {
                if rng.next_bool(p_down) {
                    self.crash(node, Round::new(r), DownKind::Abrupt);
                    up = false;
                }
            } else if rng.next_bool(p_up) {
                self.recover(node, Round::new(r));
                up = true;
            }
        }
    }

    /// Index of the first event that has **not** yet taken effect at an
    /// instance boundary `start`: down events take effect from their own
    /// round (the node is still up entering the instance and crashes
    /// *within* it), up events take effect at the first boundary at or
    /// after their round.
    fn boundary_index(&self, v: usize, start: Round) -> usize {
        self.events[v].partition_point(|(r, t)| match t {
            Transition::Up => *r <= start,
            Transition::Down(_) => *r < start,
        })
    }

    /// Whether the node participates in an instance starting at global
    /// round `start` (it may still crash during the instance).
    pub fn is_up_at(&self, node: NodeId, start: Round) -> bool {
        let v = node.index();
        match self.boundary_index(v, start) {
            0 => self.initially_up[v],
            i => matches!(self.events[v][i - 1].1, Transition::Up),
        }
    }

    /// Projects the plan onto one instance's [`CrashSchedule`], for an
    /// instance starting at global round `start`.
    ///
    /// A node down at the boundary is crashed from relative round 0 with
    /// no survivors; a node up at the boundary crashes at its next down
    /// event, translated to instance-relative rounds (or never, if it has
    /// none). Allocation-free: `out` is cleared in place and only
    /// `Subset`-free survivor modes are written (see [`DownKind`]).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not cover exactly [`ChurnPlan::n`] nodes.
    pub fn slice_into(&self, start: Round, out: &mut CrashSchedule) {
        assert_eq!(out.n(), self.n(), "crash schedule size mismatch");
        out.clear();
        for v in 0..self.n() {
            let node = NodeId::new(v);
            let i = self.boundary_index(v, start);
            let up = match i {
                0 => self.initially_up[v],
                i => matches!(self.events[v][i - 1].1, Transition::Up),
            };
            if !up {
                out.crash(node, Round::ZERO, CrashSurvivors::None);
            } else if let Some((r, Transition::Down(kind))) = self.events[v].get(i) {
                // Alternation guarantees the next unapplied event of an
                // up node is a down.
                out.crash(
                    node,
                    Round::new(r.as_u64() - start.as_u64()),
                    kind.survivors(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_plan_slices_to_no_crashes() {
        let plan = ChurnPlan::new(3);
        let mut cs = CrashSchedule::new(3);
        plan.slice_into(Round::new(17), &mut cs);
        assert_eq!(cs.fault_count(), 0);
        assert!(plan.is_up_at(nid(0), Round::ZERO));
    }

    #[test]
    fn crash_recover_crosses_boundaries() {
        let mut plan = ChurnPlan::new(2);
        plan.crash(nid(1), Round::new(5), DownKind::Abrupt);
        plan.recover(nid(1), Round::new(9));
        let mut cs = CrashSchedule::new(2);

        // Boundary 0: crash lands at relative round 5.
        plan.slice_into(Round::ZERO, &mut cs);
        assert!(!cs.is_silent(nid(1), Round::new(4)));
        assert!(cs.is_silent(nid(1), Round::new(5)));

        // Boundary 3: crash lands at relative round 2.
        plan.slice_into(Round::new(3), &mut cs);
        assert!(cs.is_silent(nid(1), Round::new(2)));

        // Boundary 6 (mid-outage): down for the whole instance.
        plan.slice_into(Round::new(6), &mut cs);
        assert!(cs.is_silent(nid(1), Round::ZERO));
        assert!(!plan.is_up_at(nid(1), Round::new(6)));

        // Boundary 9 (recovery round is a boundary): back up, clean.
        plan.slice_into(Round::new(9), &mut cs);
        assert!(!cs.is_faulty(nid(1)));
        assert!(plan.is_up_at(nid(1), Round::new(9)));
    }

    #[test]
    fn down_at_the_boundary_round_crashes_at_relative_zero_with_its_kind() {
        let mut plan = ChurnPlan::new(2);
        plan.leave(nid(0), Round::new(4));
        let mut cs = CrashSchedule::new(2);
        plan.slice_into(Round::new(4), &mut cs);
        // Graceful: the relative-round-0 broadcast completes in full.
        assert!(cs.delivers_to_all(nid(0), Round::ZERO));
        assert!(cs.is_silent(nid(0), Round::new(1)));
    }

    #[test]
    fn join_is_down_until_its_round() {
        let mut plan = ChurnPlan::new(2);
        plan.join(nid(1), Round::new(6));
        assert!(!plan.is_up_at(nid(1), Round::ZERO));
        assert!(!plan.is_up_at(nid(1), Round::new(5)));
        assert!(plan.is_up_at(nid(1), Round::new(6)));
        let mut cs = CrashSchedule::new(2);
        plan.slice_into(Round::ZERO, &mut cs);
        assert!(cs.is_silent(nid(1), Round::ZERO));
    }

    #[test]
    fn flaky_down_maps_to_random_survivors() {
        let mut plan = ChurnPlan::new(2);
        plan.crash(
            nid(0),
            Round::new(2),
            DownKind::Flaky {
                keep_probability: 0.5,
                seed: 7,
            },
        );
        let mut cs = CrashSchedule::new(2);
        plan.slice_into(Round::ZERO, &mut cs);
        let first = cs.delivers(nid(0), Round::new(2), nid(1));
        plan.slice_into(Round::ZERO, &mut cs);
        assert_eq!(
            first,
            cs.delivers(nid(0), Round::new(2), nid(1)),
            "flaky survivors must be deterministic across slices"
        );
    }

    #[test]
    fn periodic_flapping_alternates() {
        let mut plan = ChurnPlan::new(1);
        plan.flap_periodic(
            nid(0),
            Round::new(2),
            2,
            5,
            DownKind::Abrupt,
            Round::new(12),
        );
        // Down rounds: 2..4, 7..9. At a boundary equal to the down round
        // the node still participates — it crashes at relative round 0
        // with its final broadcast — so 2 and 7 read as up; only
        // boundaries strictly inside an outage (3, 8) read as down.
        for (b, up) in [
            (0, true),
            (2, true),
            (3, false),
            (4, true),
            (7, true),
            (8, false),
            (9, true),
        ] {
            assert_eq!(plan.is_up_at(nid(0), Round::new(b)), up, "boundary {b}");
        }
    }

    #[test]
    fn random_flapping_is_deterministic_and_alternates() {
        let mut a = ChurnPlan::new(3);
        let mut b = ChurnPlan::new(3);
        for v in 0..3 {
            a.flap_random(nid(v), 0.3, 0.5, 42, Round::new(200));
            b.flap_random(nid(v), 0.3, 0.5, 42, Round::new(200));
        }
        for boundary in [0u64, 13, 57, 199] {
            for v in 0..3 {
                assert_eq!(
                    a.is_up_at(nid(v), Round::new(boundary)),
                    b.is_up_at(nid(v), Round::new(boundary)),
                );
            }
        }
        // With these rates over 200 rounds, node 0 must flap at least once.
        assert!(
            (0..200).any(|r| !a.is_up_at(nid(0), Round::new(r))),
            "random flapping produced no outage in 200 rounds"
        );
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_down_panics() {
        let mut plan = ChurnPlan::new(1);
        plan.crash(nid(0), Round::new(1), DownKind::Abrupt);
        plan.crash(nid(0), Round::new(3), DownKind::Abrupt);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_rounds_panic() {
        let mut plan = ChurnPlan::new(1);
        plan.crash(nid(0), Round::new(5), DownKind::Abrupt);
        plan.recover(nid(0), Round::new(5));
    }
}
