use std::fmt;

use adn_types::rng::SplitMix64;
use adn_types::{NodeId, Round};

/// What happens to a node's outgoing messages in the very round it crashes.
///
/// A crash may interrupt the broadcast primitive midway, so the classic
/// crash model lets an *arbitrary subset* of the round's messages through.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashSurvivors {
    /// The full broadcast completes, then the node dies.
    All,
    /// The node dies before sending anything this round.
    None,
    /// Only the listed receivers get the final message.
    Subset(Vec<NodeId>),
    /// A random subset of receivers, chosen deterministically from the
    /// given seed, each kept with the given probability.
    Random {
        /// Probability that each individual receiver still gets the final
        /// message.
        keep_probability: f64,
        /// Seed for the deterministic subset choice.
        seed: u64,
    },
}

/// When (and how) each node crashes, if ever.
///
/// A node with crash round `r` behaves correctly in rounds `< r`, performs
/// a possibly-partial broadcast in round `r` (per [`CrashSurvivors`]), and
/// is silent from round `r + 1` on. Within one schedule, crashed nodes
/// never recover — this is the paper's crash model. Crash-recovery lives
/// one level up: a [`crate::ChurnPlan`] tracks up/down transitions across
/// a whole service run and projects each instance's view onto a
/// `CrashSchedule` via [`crate::ChurnPlan::slice_into`].
///
/// ```
/// use adn_faults::{CrashSchedule, CrashSurvivors};
/// use adn_types::{NodeId, Round};
///
/// let mut cs = CrashSchedule::new(4);
/// cs.crash(NodeId::new(2), Round::new(3), CrashSurvivors::None);
/// assert!(!cs.is_silent(NodeId::new(2), Round::new(2)));
/// assert!(cs.is_silent(NodeId::new(2), Round::new(3)));
/// assert!(cs.has_crashed_by(NodeId::new(2), Round::new(3)));
/// assert_eq!(cs.faulty_nodes(), vec![NodeId::new(2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashSchedule {
    events: Vec<Option<(Round, CrashSurvivors)>>,
}

impl CrashSchedule {
    /// A schedule in which nobody crashes, for a system of `n` nodes.
    pub fn new(n: usize) -> Self {
        CrashSchedule {
            events: vec![None; n],
        }
    }

    /// Builds a schedule that crashes the given nodes at the given rounds
    /// with full final broadcasts.
    pub fn at_rounds<I>(n: usize, crashes: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Round)>,
    {
        let mut cs = CrashSchedule::new(n);
        for (node, round) in crashes {
            cs.crash(node, round, CrashSurvivors::All);
        }
        cs
    }

    /// Crashes `f` nodes (the highest-indexed ones) before the execution
    /// starts — the adversarial setup of Theorem 9's second scenario.
    ///
    /// # Panics
    ///
    /// Panics if `f > n`.
    pub fn initial_crashes(n: usize, f: usize) -> Self {
        assert!(f <= n, "cannot crash {f} of {n} nodes");
        let mut cs = CrashSchedule::new(n);
        for i in n - f..n {
            cs.crash(NodeId::new(i), Round::ZERO, CrashSurvivors::None);
        }
        cs
    }

    /// Registers a crash. Overwrites any earlier crash for the same node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn crash(&mut self, node: NodeId, round: Round, survivors: CrashSurvivors) {
        self.events[node.index()] = Some((round, survivors));
    }

    /// Removes every crash, keeping the schedule's size and capacity — the
    /// in-place refresh used by [`crate::ChurnPlan::slice_into`] between
    /// service instances.
    pub fn clear(&mut self) {
        for e in &mut self.events {
            *e = None;
        }
    }

    /// Number of nodes this schedule covers.
    pub fn n(&self) -> usize {
        self.events.len()
    }

    /// Nodes that crash at some point (the paper's set `B` under the crash
    /// model), in index order. Allocates a fresh vector per call — hot
    /// paths should use [`CrashSchedule::is_faulty`] or
    /// [`CrashSchedule::faulty_iter`] instead.
    pub fn faulty_nodes(&self) -> Vec<NodeId> {
        self.faulty_iter().collect()
    }

    /// Iterates the crashing nodes in index order without allocating.
    pub fn faulty_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| NodeId::new(i)))
    }

    /// Whether `node` crashes at some point in this schedule — the O(1)
    /// membership test behind [`CrashSchedule::faulty_nodes`].
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.events[node.index()].is_some()
    }

    /// Number of faulty nodes.
    pub fn fault_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_some()).count()
    }

    /// Whether `node` has crashed strictly before or during `round`
    /// (i.e. it will never update its state at or after `round`).
    pub fn has_crashed_by(&self, node: NodeId, round: Round) -> bool {
        matches!(&self.events[node.index()], Some((r, _)) if *r <= round)
    }

    /// Whether `node` sends nothing at all in `round` (it crashed earlier,
    /// or crashes this round with no survivors).
    pub fn is_silent(&self, node: NodeId, round: Round) -> bool {
        match &self.events[node.index()] {
            Some((r, _)) if *r < round => true,
            Some((r, survivors)) if *r == round => match survivors {
                CrashSurvivors::None => true,
                CrashSurvivors::Subset(s) => s.is_empty(),
                _ => false,
            },
            _ => false,
        }
    }

    /// Whether `node`'s round-`round` broadcast reaches **every** receiver
    /// the adversary links (no per-destination filtering at all): the node
    /// is fault-free, crashes later, or crashes this round with
    /// [`CrashSurvivors::All`].
    ///
    /// The round engine classifies such senders once per round and skips
    /// the per-link [`CrashSchedule::delivers`] check on its fast path; a
    /// `false` here only means "consult `delivers` per destination".
    pub fn delivers_to_all(&self, node: NodeId, round: Round) -> bool {
        match &self.events[node.index()] {
            None => true,
            Some((r, _)) if *r > round => true,
            Some((r, CrashSurvivors::All)) if *r == round => true,
            _ => false,
        }
    }

    /// Whether `node`'s round-`round` message reaches `dest`, assuming the
    /// adversary's link is present. Fault-free (or not-yet-crashed) nodes
    /// always deliver.
    pub fn delivers(&self, node: NodeId, round: Round, dest: NodeId) -> bool {
        match &self.events[node.index()] {
            None => true,
            Some((r, _)) if *r > round => true,
            Some((r, _)) if *r < round => false,
            Some((_, survivors)) => match survivors {
                CrashSurvivors::All => true,
                CrashSurvivors::None => false,
                CrashSurvivors::Subset(s) => s.contains(&dest),
                CrashSurvivors::Random {
                    keep_probability,
                    seed,
                } => {
                    // Deterministic per-(node, dest) coin so repeated queries
                    // agree and replays are identical.
                    let mut rng =
                        SplitMix64::new(seed ^ ((node.index() as u64) << 32) ^ dest.index() as u64);
                    rng.next_bool(*keep_probability)
                }
            },
        }
    }
}

impl fmt::Display for CrashSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crashes[")?;
        let mut first = true;
        for (i, e) in self.events.iter().enumerate() {
            if let Some((r, _)) = e {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "n{i}@{r}")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_crashes_by_default() {
        let cs = CrashSchedule::new(3);
        assert_eq!(cs.fault_count(), 0);
        assert!(cs.faulty_nodes().is_empty());
        assert!(!cs.is_silent(NodeId::new(0), Round::new(100)));
        assert!(cs.delivers(NodeId::new(0), Round::ZERO, NodeId::new(1)));
    }

    #[test]
    fn crash_timeline() {
        let mut cs = CrashSchedule::new(2);
        cs.crash(NodeId::new(0), Round::new(5), CrashSurvivors::All);
        // Before: alive.
        assert!(!cs.has_crashed_by(NodeId::new(0), Round::new(4)));
        assert!(!cs.is_silent(NodeId::new(0), Round::new(4)));
        // Crash round with All survivors: still delivers, but state is dead.
        assert!(cs.has_crashed_by(NodeId::new(0), Round::new(5)));
        assert!(!cs.is_silent(NodeId::new(0), Round::new(5)));
        assert!(cs.delivers(NodeId::new(0), Round::new(5), NodeId::new(1)));
        // After: silent.
        assert!(cs.is_silent(NodeId::new(0), Round::new(6)));
        assert!(!cs.delivers(NodeId::new(0), Round::new(6), NodeId::new(1)));
    }

    #[test]
    fn delivers_to_all_tracks_crash_modes() {
        let mut cs = CrashSchedule::new(4);
        cs.crash(NodeId::new(0), Round::new(2), CrashSurvivors::All);
        cs.crash(
            NodeId::new(1),
            Round::new(2),
            CrashSurvivors::Subset(vec![NodeId::new(3)]),
        );
        // Fault-free: always.
        assert!(cs.delivers_to_all(NodeId::new(2), Round::new(9)));
        // Before the crash round: always.
        assert!(cs.delivers_to_all(NodeId::new(0), Round::new(1)));
        assert!(cs.delivers_to_all(NodeId::new(1), Round::new(1)));
        // Crash round: only the All mode keeps the broadcast complete.
        assert!(cs.delivers_to_all(NodeId::new(0), Round::new(2)));
        assert!(!cs.delivers_to_all(NodeId::new(1), Round::new(2)));
        // After: never.
        assert!(!cs.delivers_to_all(NodeId::new(0), Round::new(3)));
    }

    #[test]
    fn partial_broadcast_subset() {
        let mut cs = CrashSchedule::new(3);
        cs.crash(
            NodeId::new(0),
            Round::new(2),
            CrashSurvivors::Subset(vec![NodeId::new(2)]),
        );
        assert!(cs.delivers(NodeId::new(0), Round::new(2), NodeId::new(2)));
        assert!(!cs.delivers(NodeId::new(0), Round::new(2), NodeId::new(1)));
        // Rounds before the crash deliver to everyone.
        assert!(cs.delivers(NodeId::new(0), Round::new(1), NodeId::new(1)));
    }

    #[test]
    fn none_survivors_is_silent_crash_round() {
        let mut cs = CrashSchedule::new(2);
        cs.crash(NodeId::new(1), Round::new(0), CrashSurvivors::None);
        assert!(cs.is_silent(NodeId::new(1), Round::ZERO));
        assert!(!cs.delivers(NodeId::new(1), Round::ZERO, NodeId::new(0)));
    }

    #[test]
    fn random_survivors_are_deterministic() {
        let mut cs = CrashSchedule::new(10);
        cs.crash(
            NodeId::new(3),
            Round::new(1),
            CrashSurvivors::Random {
                keep_probability: 0.5,
                seed: 99,
            },
        );
        let first: Vec<bool> = (0..10)
            .map(|d| cs.delivers(NodeId::new(3), Round::new(1), NodeId::new(d)))
            .collect();
        let second: Vec<bool> = (0..10)
            .map(|d| cs.delivers(NodeId::new(3), Round::new(1), NodeId::new(d)))
            .collect();
        assert_eq!(first, second, "same query must give the same answer");
        assert!(first.iter().any(|&b| b) || first.iter().any(|&b| !b));
    }

    #[test]
    fn initial_crashes_silence_last_f() {
        let cs = CrashSchedule::initial_crashes(5, 2);
        assert_eq!(cs.fault_count(), 2);
        assert!(cs.is_silent(NodeId::new(4), Round::ZERO));
        assert!(cs.is_silent(NodeId::new(3), Round::ZERO));
        assert!(!cs.is_silent(NodeId::new(2), Round::ZERO));
    }

    #[test]
    fn at_rounds_builder() {
        let cs = CrashSchedule::at_rounds(4, [(NodeId::new(1), Round::new(7))]);
        assert_eq!(cs.faulty_nodes(), vec![NodeId::new(1)]);
        assert!(cs.delivers(NodeId::new(1), Round::new(7), NodeId::new(0)));
        assert!(!cs.delivers(NodeId::new(1), Round::new(8), NodeId::new(0)));
    }

    #[test]
    fn clear_and_o1_membership() {
        let mut cs = CrashSchedule::at_rounds(4, [(NodeId::new(1), Round::new(7))]);
        assert!(cs.is_faulty(NodeId::new(1)));
        assert!(!cs.is_faulty(NodeId::new(0)));
        assert_eq!(cs.faulty_iter().collect::<Vec<_>>(), cs.faulty_nodes());
        cs.clear();
        assert_eq!(cs.n(), 4);
        assert_eq!(cs.fault_count(), 0);
        assert!(!cs.is_faulty(NodeId::new(1)));
    }

    #[test]
    fn display_lists_crashes() {
        let cs = CrashSchedule::at_rounds(4, [(NodeId::new(1), Round::new(7))]);
        assert_eq!(cs.to_string(), "crashes[n1@r7]");
    }
}
